#include "softstate/map_service.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::softstate {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<MapService> maps;
  std::vector<overlay::NodeId> nodes;
  std::unordered_map<overlay::NodeId, proximity::LandmarkVector> vectors;

  explicit Fixture(std::uint64_t seed, std::size_t overlay_nodes = 128,
                   MapConfig config = {}) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 8, rng, {}));
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (std::size_t i = 0; i < overlay_nodes; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(ecan->join_random(host, rng));
    }
    maps = std::make_unique<MapService>(*ecan, *landmarks, config);
    for (const auto id : nodes)
      vectors[id] = landmarks->measure(*oracle, ecan->node(id).host);
  }

  void publish_all(sim::Time now = 0.0) {
    for (const auto id : nodes) maps->publish(id, vectors[id], now);
  }
};

TEST(MapPosition, StaysInsideCellAndMapRegion) {
  Fixture f(1);
  for (const auto id : f.nodes) {
    const int levels = f.ecan->node_level(id);
    const auto number = f.landmarks->landmark_number(f.vectors[id]);
    for (int h = 1; h <= levels; ++h) {
      const auto cell = f.ecan->cell_of_node(id, h);
      const geom::Point p = f.maps->map_position(number, h, cell);
      EXPECT_TRUE(f.ecan->cell_zone(h, cell).contains(p));
    }
  }
}

TEST(MapPosition, CondenseRateShrinksRegion) {
  MapConfig condensed;
  condensed.condense_rate = 0.25;  // half the side per axis in 2-d
  Fixture f(2, 64, condensed);
  const auto id = f.nodes[0];
  if (f.ecan->node_level(id) < 1) GTEST_SKIP();
  const auto cell = f.ecan->cell_of_node(id, 1);
  const geom::Zone zone = f.ecan->cell_zone(1, cell);
  const auto number = f.landmarks->landmark_number(f.vectors[id]);
  const geom::Point p = f.maps->map_position(number, 1, cell);
  for (std::size_t d = 0; d < 2; ++d)
    EXPECT_LT(p[d], zone.lo(d) + zone.side(d) * 0.5 + 1e-12);
}

TEST(MapPosition, PreservesLandmarkLocality) {
  // Closer landmark numbers map to closer positions (within one cell).
  Fixture f(3);
  const auto cell = std::vector<std::uint32_t>{0, 0};
  const geom::Point a =
      f.maps->map_position(util::BigUint(0), 1, cell);
  const int bits = f.landmarks->number_bits();
  const geom::Point near_a =
      f.maps->map_position(util::BigUint::pow2(bits - 10), 1, cell);
  const geom::Point far_a = f.maps->map_position(
      util::BigUint::pow2(bits - 1) | util::BigUint::pow2(bits - 2), 1, cell);
  EXPECT_LT(a.torus_distance(near_a), a.torus_distance(far_a));
}

TEST(MapService, PublishStoresAtEveryLevel) {
  Fixture f(4);
  const auto id = f.nodes[10];
  f.maps->publish(id, f.vectors[id], 0.0);
  EXPECT_EQ(f.maps->total_entries(),
            static_cast<std::size_t>(f.ecan->node_level(id)));
  EXPECT_EQ(f.maps->stats().publishes, 1u);
}

TEST(MapService, RepublishReplacesNotDuplicates) {
  Fixture f(5);
  const auto id = f.nodes[3];
  f.maps->publish(id, f.vectors[id], 0.0);
  const std::size_t after_first = f.maps->total_entries();
  f.maps->publish(id, f.vectors[id], 100.0);
  EXPECT_EQ(f.maps->total_entries(), after_first);
}

TEST(MapService, LookupFindsPublishedCandidates) {
  Fixture f(6);
  f.publish_all();
  const auto querier = f.nodes[0];
  const int level = 1;
  // Look into an adjacent level-1 cell (where the querier would select a
  // representative).
  const auto my_cell = f.ecan->cell_of_node(querier, level);
  const auto adj = f.ecan->adjacent_cell(my_cell, level, 0, 1);
  const auto members = f.ecan->members_of_cell(level, adj);
  if (members.empty()) GTEST_SKIP();
  const LookupResult result =
      f.maps->lookup(querier, f.vectors[querier], level, adj, 0.0);
  EXPECT_FALSE(result.candidates.empty());
  EXPECT_NE(result.owner, overlay::kInvalidNode);
  // All returned hosts belong to members of that cell.
  for (const auto& record : result.candidates) {
    bool found = false;
    for (const auto m : members)
      if (f.ecan->node(m).host == record.host) found = true;
    EXPECT_TRUE(found);
  }
}

TEST(MapService, LookupResultsSortedByVectorDistance) {
  Fixture f(7, 256);
  f.publish_all();
  const auto querier = f.nodes[1];
  const auto my_cell = f.ecan->cell_of_node(querier, 1);
  const auto adj = f.ecan->adjacent_cell(my_cell, 1, 1, 0);
  const LookupResult result =
      f.maps->lookup(querier, f.vectors[querier], 1, adj, 0.0);
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    EXPECT_LE(proximity::vector_distance(result.candidates[i - 1].vector,
                                         f.vectors[querier]),
              proximity::vector_distance(result.candidates[i].vector,
                                         f.vectors[querier]) +
                  1e-12);
  }
}

TEST(MapService, LookupNeverReturnsQuerier) {
  // Exclusion is by overlay node identity: distinct overlay nodes on the
  // same underlay host are legitimate candidates (RTT 0).
  Fixture f(8);
  f.publish_all();
  for (const auto querier : f.nodes) {
    if (f.ecan->node_level(querier) < 1) continue;
    const auto my_cell = f.ecan->cell_of_node(querier, 1);
    const auto entries =
        f.maps->lookup_entries(querier, f.vectors[querier], 1, my_cell, 0.0);
    for (const auto& entry : entries) EXPECT_NE(entry.node, querier);
  }
}

TEST(MapService, MaxReturnCaps) {
  MapConfig config;
  config.max_return = 3;
  Fixture f(9, 256, config);
  f.publish_all();
  const auto querier = f.nodes[0];
  const auto my_cell = f.ecan->cell_of_node(querier, 1);
  const auto adj = f.ecan->adjacent_cell(my_cell, 1, 0, 1);
  const LookupResult result =
      f.maps->lookup(querier, f.vectors[querier], 1, adj, 0.0);
  EXPECT_LE(result.candidates.size(), 3u);
}

TEST(MapService, TtlExpiryDropsEntries) {
  MapConfig config;
  config.ttl_ms = 1000.0;
  Fixture f(10, 64, config);
  f.publish_all(0.0);
  EXPECT_GT(f.maps->total_entries(), 0u);
  f.maps->expire_before(999.0);
  EXPECT_GT(f.maps->total_entries(), 0u);
  f.maps->expire_before(1000.0);
  EXPECT_EQ(f.maps->total_entries(), 0u);
  EXPECT_GT(f.maps->stats().expired_entries, 0u);
}

TEST(MapService, LookupPrunesExpiredOnAccess) {
  MapConfig config;
  config.ttl_ms = 10.0;
  config.lookup_ring_ttl = 0;
  Fixture f(11, 64, config);
  f.publish_all(0.0);
  const auto querier = f.nodes[0];
  const auto my_cell = f.ecan->cell_of_node(querier, 1);
  const auto adj = f.ecan->adjacent_cell(my_cell, 1, 0, 1);
  const LookupResult result =
      f.maps->lookup(querier, f.vectors[querier], 1, adj, /*now=*/50.0);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(MapService, RemoveEverywhereScrubsNode) {
  Fixture f(12);
  f.publish_all();
  const auto victim = f.nodes[5];
  f.maps->remove_everywhere(victim);
  // No lookup may ever return the victim's host again.
  const auto querier = f.nodes[0];
  for (int dir = 0; dir < 2; ++dir) {
    const auto my_cell = f.ecan->cell_of_node(querier, 1);
    const auto adj = f.ecan->adjacent_cell(my_cell, 1, 0, dir);
    const LookupResult result =
        f.maps->lookup(querier, f.vectors[querier], 1, adj, 0.0);
    for (const auto& record : result.candidates)
      EXPECT_NE(record.host, f.ecan->node(victim).host);
  }
}

TEST(MapService, ReportDeadDeletesLazily) {
  Fixture f(13);
  f.publish_all();
  const auto querier = f.nodes[0];
  const auto my_cell = f.ecan->cell_of_node(querier, 1);
  const auto adj = f.ecan->adjacent_cell(my_cell, 1, 0, 1);
  LookupResult meta;
  const auto entries =
      f.maps->lookup_entries(querier, f.vectors[querier], 1, adj, 0.0, &meta);
  if (entries.empty()) GTEST_SKIP();
  const auto dead = entries[0].node;
  const std::size_t before = f.maps->total_entries();
  f.maps->report_dead(meta.owner, dead);
  EXPECT_LT(f.maps->total_entries(), before);
  EXPECT_GT(f.maps->stats().lazy_deletions, 0u);
}

TEST(MapService, MigrationOnJoinKeepsEntriesFindable) {
  Fixture f(14, 64);
  f.publish_all();
  util::Rng rng(140);
  // New joins split zones; stored entries must follow their positions.
  for (int i = 0; i < 32; ++i) {
    overlay::NodeId peer = overlay::kInvalidNode;
    const auto host =
        static_cast<net::HostId>(rng.next_u64(f.topology.host_count()));
    const auto id =
        f.ecan->join(host, geom::Point::random(2, rng), &peer);
    f.maps->migrate_after_join(id, peer);
    f.vectors[id] = f.landmarks->measure(*f.oracle, host);
    f.nodes.push_back(id);
  }
  // Every stored entry must live on the owner of its position. Verify via
  // a full republish-free lookup for a few nodes.
  const auto querier = f.nodes[0];
  const auto my_cell = f.ecan->cell_of_node(querier, 1);
  const auto adj = f.ecan->adjacent_cell(my_cell, 1, 0, 1);
  const LookupResult result =
      f.maps->lookup(querier, f.vectors[querier], 1, adj, 0.0);
  EXPECT_GE(result.candidates.size(), 1u);
}

TEST(MapService, ExtractAndRehome) {
  Fixture f(15, 64);
  f.publish_all();
  // Pick a node hosting entries.
  overlay::NodeId host_node = overlay::kInvalidNode;
  for (const auto id : f.nodes)
    if (f.maps->store_size(id) > 0) {
      host_node = id;
      break;
    }
  ASSERT_NE(host_node, overlay::kInvalidNode);
  const std::size_t total_before = f.maps->total_entries();
  auto extracted = f.maps->extract_store(host_node);
  EXPECT_EQ(f.maps->total_entries(), total_before - extracted.size());
  f.maps->rehome(std::move(extracted));
  EXPECT_EQ(f.maps->total_entries(), total_before);
}

TEST(MapService, EntriesPerNodeStatistics) {
  Fixture f(16, 128);
  f.publish_all();
  EXPECT_GT(f.maps->mean_entries_per_node(), 0.0);
  EXPECT_GE(f.maps->max_entries_per_node(),
            static_cast<std::size_t>(f.maps->mean_entries_per_node()));
}

TEST(MapService, RingExpansionFindsRemoteEntries) {
  // With a tiny map grid and an empty landing piece, the TTL-bounded ring
  // search over adjacent pieces should still find candidates.
  MapConfig config;
  config.lookup_ring_ttl = 3;
  Fixture f(17, 128, config);
  f.publish_all();
  const auto querier = f.nodes[0];
  const auto my_cell = f.ecan->cell_of_node(querier, 1);
  const auto adj = f.ecan->adjacent_cell(my_cell, 1, 0, 1);
  LookupResult meta;
  f.maps->lookup_entries(querier, f.vectors[querier], 1, adj, 0.0, &meta);
  EXPECT_GE(meta.pieces_visited, 1u);
}

// Regression: rehome used to append directly to the target store, so a
// record republished while its old host was drained ended up twice in the
// same map, and subscribers never heard about rehomed entries.
TEST(MapService, RehomeAfterRepublishLeavesNoDuplicates) {
  Fixture f(19, 64);
  f.publish_all(/*now=*/0.0);
  overlay::NodeId host_node = overlay::kInvalidNode;
  for (const auto id : f.nodes)
    if (f.maps->store_size(id) > 0) {
      host_node = id;
      break;
    }
  ASSERT_NE(host_node, overlay::kInvalidNode);

  // Drain the host (as the leave protocol does), then republish everyone
  // — the republished copies land back on the still-alive owners.
  auto drained = f.maps->extract_store(host_node);
  ASSERT_FALSE(drained.empty());
  f.publish_all(/*now=*/1'000.0);

  // Replaying the drained store must not duplicate any (node, level,
  // cell) record: the totals match a clean full publish.
  f.maps->rehome(std::move(drained));
  const std::size_t total_after = f.maps->total_entries();
  softstate::MapService fresh(*f.ecan, *f.landmarks, MapConfig{});
  for (const auto id : f.nodes) fresh.publish(id, f.vectors[id], 1'000.0);
  EXPECT_EQ(total_after, fresh.total_entries());
  EXPECT_TRUE(f.maps->check_placement_invariant());
  EXPECT_GT(f.maps->stats().rehomed_entries, 0u);
}

// Regression: the rehomed copy must not roll back a fresher republish —
// the newer record (later expiry) wins.
TEST(MapService, RehomeNeverOverwritesFresherRecord) {
  Fixture f(20, 64);
  f.publish_all(/*now=*/0.0);
  overlay::NodeId host_node = overlay::kInvalidNode;
  for (const auto id : f.nodes)
    if (f.maps->store_size(id) > 0) {
      host_node = id;
      break;
    }
  ASSERT_NE(host_node, overlay::kInvalidNode);
  auto drained = f.maps->extract_store(host_node);
  ASSERT_FALSE(drained.empty());
  f.publish_all(/*now=*/10'000.0);
  f.maps->rehome(std::move(drained));

  // Everything republished at t=10s must survive an expiry sweep right
  // after the t=0 copies would have died.
  const sim::Time just_past_first_ttl = MapConfig{}.ttl_ms + 1.0;
  f.maps->expire_before(just_past_first_ttl);
  softstate::MapService fresh(*f.ecan, *f.landmarks, MapConfig{});
  for (const auto id : f.nodes) fresh.publish(id, f.vectors[id], 0.0);
  EXPECT_EQ(f.maps->total_entries(), fresh.total_entries());
}

// Regression: rehomed entries now flow through place_entry, so the
// pub/sub publish observer sees them (subscribers used to silently miss
// records that moved owners during churn).
TEST(MapService, RehomeFiresPublishObserver) {
  Fixture f(21, 64);
  f.publish_all();
  overlay::NodeId host_node = overlay::kInvalidNode;
  for (const auto id : f.nodes)
    if (f.maps->store_size(id) > 0) {
      host_node = id;
      break;
    }
  ASSERT_NE(host_node, overlay::kInvalidNode);
  auto drained = f.maps->extract_store(host_node);
  ASSERT_FALSE(drained.empty());

  std::size_t observed = 0;
  f.maps->set_publish_observer(
      [&](overlay::NodeId, const StoredEntry&) { ++observed; });
  const std::size_t rehomed = drained.size();
  f.maps->rehome(std::move(drained));
  EXPECT_EQ(observed, rehomed);
}

// Regression: a publish whose overlay route fails used to drop the entry
// with no accounting; it now lands in failed_routes, kept distinct from
// injected message loss so fault experiments can tell the two apart.
TEST(MapService, FailedRoutesDistinctFromInjectedLoss) {
  Fixture f(22, 64);
  f.publish_all();
  EXPECT_EQ(f.maps->stats().failed_routes, 0u);  // healthy overlay

  f.maps->reset_stats();
  f.maps->inject_faults(/*publish_loss=*/1.0, /*seed=*/7);
  f.maps->publish(f.nodes[0], f.vectors[f.nodes[0]], 0.0);
  EXPECT_GT(f.maps->stats().lost_messages, 0u);
  // Injected loss is not routing loss.
  EXPECT_EQ(f.maps->stats().failed_routes, 0u);
}

TEST(MapService, StatsAccumulateRouteHops) {
  Fixture f(18, 64);
  f.publish_all();
  EXPECT_GT(f.maps->stats().route_hops, 0u);
  const auto lookups_before = f.maps->stats().lookups;
  const auto querier = f.nodes[0];
  const auto my_cell = f.ecan->cell_of_node(querier, 1);
  f.maps->lookup(querier, f.vectors[querier], 1, my_cell, 0.0);
  EXPECT_EQ(f.maps->stats().lookups, lookups_before + 1);
  f.maps->reset_stats();
  EXPECT_EQ(f.maps->stats().lookups, 0u);
}

}  // namespace
}  // namespace topo::softstate
