#include "util/svd.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace topo::util {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m.at(i, j) = rng.next_double(-5, 5);
  return m;
}

double reconstruction_error(const Matrix& a, const SvdResult& r) {
  // || A - U S V^T ||_F
  double err = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      double reconstructed = 0.0;
      for (std::size_t k = 0; k < r.singular.size(); ++k)
        reconstructed += r.u.at(i, k) * r.singular[k] * r.v.at(j, k);
      const double d = a.at(i, j) - reconstructed;
      err += d * d;
    }
  return std::sqrt(err);
}

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 3;
  a.at(1, 0) = 4;
  a.at(1, 1) = 5;
  a.at(1, 2) = 6;
  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_DOUBLE_EQ(at.at(2, 1), 6.0);

  const Matrix product = a.multiply(at);  // 2x2
  EXPECT_DOUBLE_EQ(product.at(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(product.at(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(product.at(1, 1), 77.0);
}

TEST(Svd, DiagonalMatrix) {
  Matrix a(3, 3);
  a.at(0, 0) = 3.0;
  a.at(1, 1) = 1.0;
  a.at(2, 2) = 2.0;
  const SvdResult r = svd(a);
  ASSERT_EQ(r.singular.size(), 3u);
  EXPECT_NEAR(r.singular[0], 3.0, 1e-10);
  EXPECT_NEAR(r.singular[1], 2.0, 1e-10);
  EXPECT_NEAR(r.singular[2], 1.0, 1e-10);
}

TEST(Svd, SingularValuesDescending) {
  Rng rng(11);
  const Matrix a = random_matrix(20, 6, rng);
  const SvdResult r = svd(a);
  for (std::size_t i = 1; i < r.singular.size(); ++i)
    EXPECT_GE(r.singular[i - 1], r.singular[i]);
}

TEST(Svd, Reconstruction) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix a = random_matrix(15, 5, rng);
    const SvdResult r = svd(a);
    EXPECT_LT(reconstruction_error(a, r), 1e-8);
  }
}

TEST(Svd, RightSingularVectorsOrthonormal) {
  Rng rng(17);
  const Matrix a = random_matrix(30, 8, rng);
  const SvdResult r = svd(a);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      double dot = 0.0;
      for (std::size_t k = 0; k < 8; ++k)
        dot += r.v.at(k, i) * r.v.at(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Svd, RankDeficientHasZeroSingularValues) {
  // Two identical columns -> rank 1.
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a.at(i, 0) = static_cast<double>(i + 1);
    a.at(i, 1) = static_cast<double>(i + 1);
  }
  const SvdResult r = svd(a);
  EXPECT_GT(r.singular[0], 1.0);
  EXPECT_NEAR(r.singular[1], 0.0, 1e-9);
}

TEST(SvdProject, PreservesDistancesWhenFullRank) {
  // Projection onto all components is an isometry (rotation).
  Rng rng(19);
  const Matrix a = random_matrix(12, 4, rng);
  const Matrix p = svd_project(a, 4);
  auto dist = [](const Matrix& m, std::size_t r1, std::size_t r2) {
    double sum = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const double d = m.at(r1, j) - m.at(r2, j);
      sum += d * d;
    }
    return std::sqrt(sum);
  };
  for (std::size_t i = 0; i < 11; ++i)
    EXPECT_NEAR(dist(a, i, i + 1), dist(p, i, i + 1), 1e-8);
}

TEST(SvdProject, DropsNoiseDimension) {
  // Points on a line in 3-d plus tiny noise: 1 component captures them.
  Rng rng(23);
  Matrix a(50, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    const double t = rng.next_double(-1, 1);
    a.at(i, 0) = 3.0 * t + rng.next_double(-1e-4, 1e-4);
    a.at(i, 1) = -2.0 * t + rng.next_double(-1e-4, 1e-4);
    a.at(i, 2) = 1.0 * t + rng.next_double(-1e-4, 1e-4);
  }
  const SvdResult r = svd(a);
  EXPECT_GT(r.singular[0], 100 * r.singular[1]);  // dominant direction
  const Matrix p = svd_project(a, 1);
  EXPECT_EQ(p.cols(), 1u);
}

}  // namespace
}  // namespace topo::util
