#include "overlay/ecan.hpp"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

namespace topo::overlay {
namespace {

/// Deterministic selector for structural tests: first member.
class FirstMemberSelector final : public RepresentativeSelector {
 public:
  NodeId select(NodeId, int, const geom::Zone&,
                std::span<const NodeId> members) override {
    return members.front();
  }
};

std::unique_ptr<EcanNetwork> build(std::size_t n, util::Rng& rng,
                                   std::size_t dims = 2) {
  auto ecan = std::make_unique<EcanNetwork>(dims);
  for (net::HostId h = 0; h < n; ++h) ecan->join_random(h, rng);
  return ecan;
}

TEST(Ecan, NodeLevelMatchesZoneSize) {
  util::Rng rng(1);
  EcanNetwork ecan(2);
  const NodeId a = ecan.join_random(0, rng);
  EXPECT_EQ(ecan.node_level(a), 0);  // whole space: no enclosing cell
  const NodeId b = ecan.join_random(1, rng);
  // Two half zones: each fits in no level-1 cell (side 1.0 x 0.5)...
  // level is limited by the longest side: 1.0 -> level 0 on that axis.
  EXPECT_EQ(ecan.node_level(a), 0);
  EXPECT_EQ(ecan.node_level(b), 0);
  util::Rng rng2(2);
  const auto big_ptr = build(64, rng2);
  const EcanNetwork& big = *big_ptr;
  for (const NodeId id : big.live_nodes()) {
    const int level = big.node_level(id);
    if (level >= 1) {
      // The zone must fit inside its level cell...
      const auto cell = big.cell_of_node(id, level);
      const geom::Zone cz = big.cell_zone(level, cell);
      EXPECT_TRUE(cz.contains(big.node(id).zone));
      // ...and be too big for any deeper cell.
      const double next_side = cz.side(0) / 2.0;
      double max_side = 0.0;
      for (std::size_t d = 0; d < 2; ++d)
        max_side = std::max(max_side, big.node(id).zone.side(d));
      EXPECT_GT(max_side, next_side - 1e-12);
    }
  }
}

TEST(Ecan, MembershipIndexConsistency) {
  util::Rng rng(3);
  auto ecan_ptr = build(128, rng);
  EcanNetwork& ecan = *ecan_ptr;
  EXPECT_TRUE(ecan.check_membership_index());
}

TEST(Ecan, MembershipIndexUnderChurn) {
  util::Rng rng(5);
  EcanNetwork ecan(2);
  std::vector<NodeId> live;
  net::HostId next_host = 0;
  for (int step = 0; step < 300; ++step) {
    if (live.size() < 4 || rng.next_bool(0.6)) {
      live.push_back(ecan.join_random(next_host++, rng));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      ecan.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 60 == 59) {
      ASSERT_TRUE(ecan.check_membership_index()) << "step " << step;
    }
  }
  EXPECT_TRUE(ecan.check_membership_index());
}

TEST(Ecan, CellsOfPointAndNodeAgree) {
  util::Rng rng(7);
  const auto ecan_ptr = build(64, rng);
  EcanNetwork& ecan = *ecan_ptr;
  for (const NodeId id : ecan.live_nodes()) {
    const int level = ecan.node_level(id);
    for (int h = 1; h <= level; ++h) {
      EXPECT_EQ(ecan.cell_of_node(id, h),
                ecan.cell_of_point(ecan.node(id).zone.center(), h));
    }
  }
}

TEST(Ecan, AdjacentCellWraps) {
  util::Rng rng(9);
  const auto ecan_ptr = build(16, rng);
  EcanNetwork& ecan = *ecan_ptr;
  const std::vector<std::uint32_t> corner = {0, 0};
  const auto left = ecan.adjacent_cell(corner, 2, 0, 0);
  EXPECT_EQ(left[0], 3u);  // wrapped to the far side
  EXPECT_EQ(left[1], 0u);
  const auto right = ecan.adjacent_cell(corner, 2, 0, 1);
  EXPECT_EQ(right[0], 1u);
}

TEST(Ecan, BuildTablesPointsAtAdjacentCellMembers) {
  util::Rng rng(11);
  auto ecan_ptr = build(128, rng);
  EcanNetwork& ecan = *ecan_ptr;
  FirstMemberSelector selector;
  ecan.build_all_tables(selector);
  for (const NodeId id : ecan.live_nodes()) {
    const int levels = ecan.node_level(id);
    for (int h = 1; h <= levels; ++h) {
      const auto my_cell = ecan.cell_of_node(id, h);
      for (std::size_t dim = 0; dim < 2; ++dim) {
        for (int dir = 0; dir < 2; ++dir) {
          const NodeId rep = ecan.table_entry(id, h, dim, dir);
          if (rep == kInvalidNode) continue;
          const auto adj = ecan.adjacent_cell(my_cell, h, dim, dir);
          const auto members = ecan.members_of_cell(h, adj);
          EXPECT_NE(std::find(members.begin(), members.end(), rep),
                    members.end());
        }
      }
    }
  }
}

TEST(Ecan, ExpresswayRoutingReachesOwner) {
  util::Rng rng(13);
  auto ecan_ptr = build(256, rng);
  EcanNetwork& ecan = *ecan_ptr;
  FirstMemberSelector selector;
  ecan.build_all_tables(selector);
  const auto live = ecan.live_nodes();
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(2, rng);
    const RouteResult route = ecan.route_ecan(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), ecan.owner_of(key));
  }
}

TEST(Ecan, ExpresswayBeatsPlainCanOnHops) {
  util::Rng rng(17);
  auto ecan_ptr = build(1024, rng);
  EcanNetwork& ecan = *ecan_ptr;
  FirstMemberSelector selector;
  ecan.build_all_tables(selector);
  const auto live = ecan.live_nodes();
  double ecan_hops = 0.0;
  double can_hops = 0.0;
  int queries = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(2, rng);
    const RouteResult fast = ecan.route_ecan(from, key);
    const RouteResult slow = ecan.route(from, key);
    ASSERT_TRUE(fast.success);
    ASSERT_TRUE(slow.success);
    ecan_hops += static_cast<double>(fast.hops());
    can_hops += static_cast<double>(slow.hops());
    ++queries;
  }
  // Figure 2's claim at N=1024, d=2: expressways cut hops dramatically.
  EXPECT_LT(ecan_hops / queries, 0.45 * can_hops / queries);
}

TEST(Ecan, RoutingWorksWithoutTables) {
  // No tables built: pure CAN greedy fallback still delivers.
  util::Rng rng(19);
  auto ecan_ptr = build(64, rng);
  EcanNetwork& ecan = *ecan_ptr;
  const auto live = ecan.live_nodes();
  const RouteResult route =
      ecan.route_ecan(live[0], geom::Point::random(2, rng));
  EXPECT_TRUE(route.success);
}

TEST(Ecan, DeadEntriesAreSkippedAndCounted) {
  util::Rng rng(23);
  auto ecan_ptr = build(128, rng);
  EcanNetwork& ecan = *ecan_ptr;
  FirstMemberSelector selector;
  ecan.build_all_tables(selector);
  // Kill 30 nodes without repairing tables.
  auto live = ecan.live_nodes();
  rng.shuffle(live);
  for (int i = 0; i < 30; ++i) ecan.leave(live[static_cast<std::size_t>(i)]);
  const auto survivors = ecan.live_nodes();
  const std::uint64_t broken_before = ecan.broken_entry_encounters();
  int successes = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const NodeId from = survivors[rng.next_u64(survivors.size())];
    const RouteResult route =
        ecan.route_ecan(from, geom::Point::random(2, rng));
    if (route.success) ++successes;
  }
  EXPECT_EQ(successes, 100);  // greedy fallback guarantees delivery
  EXPECT_GE(ecan.broken_entry_encounters(), broken_before);
}

TEST(Ecan, RepairEntriesToReplacesDeadReferences) {
  util::Rng rng(29);
  auto ecan_ptr = build(128, rng);
  EcanNetwork& ecan = *ecan_ptr;
  FirstMemberSelector selector;
  ecan.build_all_tables(selector);
  auto live = ecan.live_nodes();
  const NodeId victim = live[rng.next_u64(live.size())];
  ecan.leave(victim);
  ecan.repair_entries_to(victim, selector);
  for (const NodeId id : ecan.live_nodes()) {
    const int levels = ecan.node_level(id);
    for (int h = 1; h <= levels; ++h)
      for (std::size_t dim = 0; dim < 2; ++dim)
        for (int dir = 0; dir < 2; ++dir)
          EXPECT_NE(ecan.table_entry(id, h, dim, dir), victim);
  }
}

TEST(Ecan, ProximityRoutingReachesOwnerAndTerminates) {
  util::Rng rng(37);
  auto ecan_ptr = build(256, rng);
  EcanNetwork& ecan = *ecan_ptr;
  FirstMemberSelector selector;
  ecan.build_all_tables(selector);

  // A topology for RTT knowledge (hosts were assigned 0..255 by build()).
  net::Topology topology;
  // build() used hosts 0..255; make a trivial star topology covering them.
  const net::HostId hub = topology.add_host({net::HostKind::kTransit, 0, -1});
  for (int i = 0; i < 256; ++i) {
    const net::HostId h = topology.add_host({net::HostKind::kStub, 0, 0});
    topology.add_link(h, hub, net::LinkClass::kTransitStub);
  }
  topology.freeze();
  for (std::size_t i = 0; i < topology.link_count(); ++i)
    topology.mutable_link(i).latency_ms = 1.0 + static_cast<double>(i % 7);
  net::RttOracle oracle(topology);

  for (int trial = 0; trial < 100; ++trial) {
    const auto live = ecan.live_nodes();
    const NodeId from = live[rng.next_u64(live.size())];
    const geom::Point key = geom::Point::random(2, rng);
    const RouteResult route = ecan.route_ecan_proximity(from, key, oracle);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), ecan.owner_of(key));
  }
}

TEST(Ecan, RefreshSingleEntry) {
  util::Rng rng(31);
  auto ecan_ptr = build(64, rng);
  EcanNetwork& ecan = *ecan_ptr;
  FirstMemberSelector selector;
  ecan.build_all_tables(selector);
  // Pick a node with a valid entry and refresh it.
  for (const NodeId id : ecan.live_nodes()) {
    if (ecan.node_level(id) < 1) continue;
    const NodeId before = ecan.table_entry(id, 1, 0, 1);
    if (before == kInvalidNode) continue;
    ecan.refresh_entry(id, 1, 0, 1, selector);
    EXPECT_NE(ecan.table_entry(id, 1, 0, 1), kInvalidNode);
    return;
  }
  FAIL() << "no refreshable entry found";
}

}  // namespace
}  // namespace topo::overlay
