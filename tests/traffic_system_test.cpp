// System-level traffic-plane coverage:
//  * an enabled-but-idle plane leaves every simulated value identical to
//    the disabled system (the gates only act through utilization);
//  * join-time publishes carry the probed load in both the scalar and
//    batched paths (regression: they hardcoded load=0 past the probe);
//  * saturating a watched representative drives kLoadExceeded
//    re-selection away from it (the closed Section 6 loop);
//  * same-seed runs are deterministic, drop draws included.
#include <algorithm>
#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/soft_state_overlay.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::core {
namespace {

net::Topology make_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology t = net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(t, net::LatencyModel::kManual, rng);
  return t;
}

SystemConfig small_config() {
  SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  return config;
}

std::vector<net::HostId> random_hosts(const net::Topology& t, std::size_t n,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<net::HostId> hosts;
  for (std::size_t i = 0; i < n; ++i)
    hosts.push_back(static_cast<net::HostId>(rng.next_u64(t.host_count())));
  return hosts;
}

/// Full observable state: every map record (owner, node, load, expiry)
/// plus every expressway table entry.
std::multiset<std::tuple<overlay::NodeId, overlay::NodeId, double, double>>
map_state(SoftStateOverlay& system) {
  std::multiset<std::tuple<overlay::NodeId, overlay::NodeId, double, double>>
      state;
  system.maps().for_each_entry(
      [&](overlay::NodeId owner, const softstate::StoredEntry& stored) {
        state.emplace(owner, stored.entry.node, stored.entry.load,
                      stored.entry.expires_at);
      });
  return state;
}

std::vector<overlay::NodeId> table_state(SoftStateOverlay& system,
                                         const std::vector<overlay::NodeId>&
                                             nodes) {
  std::vector<overlay::NodeId> state;
  for (const auto id : nodes) {
    const int levels = system.ecan().node_level(id);
    for (int h = 1; h <= levels; ++h)
      for (std::size_t dim = 0; dim < system.ecan().dims(); ++dim)
        for (int dir = 0; dir < 2; ++dir)
          state.push_back(system.ecan().table_entry(id, h, dim, dir));
  }
  return state;
}

TEST(TrafficSystem, IdleEnabledPlaneMatchesDisabledSystem) {
  const net::Topology t = make_topology(1);
  const auto hosts = random_hosts(t, 48, 100);

  SystemConfig off = small_config();
  SystemConfig on = small_config();
  on.traffic.enabled = true;
  // No offered flows and no window rollover: utilization stays zero, so
  // every queuing term is 0 and no drop draw ever happens.
  on.traffic.utilization_window_ms = 1e18;

  SoftStateOverlay a(t, off);
  SoftStateOverlay b(t, on);
  ASSERT_FALSE(a.traffic().active());
  ASSERT_TRUE(b.traffic().active());
  std::vector<overlay::NodeId> nodes_a;
  std::vector<overlay::NodeId> nodes_b;
  for (const auto host : hosts) {
    nodes_a.push_back(a.join(host));
    nodes_b.push_back(b.join(host));
  }
  EXPECT_EQ(nodes_a, nodes_b);
  EXPECT_EQ(map_state(a), map_state(b));
  EXPECT_EQ(table_state(a, nodes_a), table_state(b, nodes_b));
  EXPECT_EQ(a.oracle().probe_count(), b.oracle().probe_count());

  util::Rng rng_a(7);
  util::Rng rng_b(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto route_a = a.lookup(nodes_a[rng_a.next_u64(nodes_a.size())],
                                  geom::Point::random(2, rng_a));
    const auto route_b = b.lookup(nodes_b[rng_b.next_u64(nodes_b.size())],
                                  geom::Point::random(2, rng_b));
    EXPECT_EQ(route_a.success, route_b.success);
    EXPECT_EQ(route_a.path, route_b.path);
  }
  EXPECT_EQ(b.traffic().stats().dropped, 0u);
  EXPECT_EQ(b.traffic().stats().delayed, 0u);
}

TEST(TrafficSystem, JoinPublishesProbedLoad) {
  const net::Topology t = make_topology(2);
  SoftStateOverlay system(t, small_config());
  system.set_load_probe([](overlay::NodeId) { return 0.5; });
  // Populate first: a lone node owns the whole space (level 0) and has no
  // high-order maps to publish into.
  for (const auto host : random_hosts(t, 32, 500)) system.join(host);
  const auto id = system.join(0);

  std::size_t records = 0;
  system.maps().for_each_entry(
      [&](overlay::NodeId, const softstate::StoredEntry& stored) {
        if (stored.entry.node != id) return;
        ++records;
        // Regression: the join-time publish used to hardcode load = 0.
        EXPECT_DOUBLE_EQ(stored.entry.load, 0.5);
      });
  EXPECT_GT(records, 0u);
}

TEST(TrafficSystem, JoinManyPublishesProbedLoadIdenticallyToScalar) {
  const net::Topology t = make_topology(3);
  const auto hosts = random_hosts(t, 48, 200);

  SystemConfig config = small_config();
  SoftStateOverlay scalar(t, config);
  SoftStateOverlay batched(t, config);
  const auto probe = [](overlay::NodeId id) {
    return 0.1 * static_cast<double>(id % 7);
  };
  scalar.set_load_probe(probe);
  batched.set_load_probe(probe);

  std::vector<overlay::NodeId> nodes_scalar;
  for (const auto host : hosts) nodes_scalar.push_back(scalar.join(host));
  const auto nodes_batched = batched.join_many(hosts);

  EXPECT_EQ(nodes_scalar, nodes_batched);
  EXPECT_EQ(map_state(scalar), map_state(batched));
  bool saw_nonzero = false;
  batched.maps().for_each_entry(
      [&](overlay::NodeId, const softstate::StoredEntry& stored) {
        EXPECT_DOUBLE_EQ(stored.entry.load, probe(stored.entry.node));
        if (stored.entry.load > 0.0) saw_nonzero = true;
      });
  EXPECT_TRUE(saw_nonzero);
}

TEST(TrafficSystem, TrafficUtilizationIsTheDefaultLoadProbe) {
  const net::Topology t = make_topology(4);
  SystemConfig config = small_config();
  config.traffic.enabled = true;
  SoftStateOverlay system(t, config);
  for (const auto h : random_hosts(t, 32, 600)) system.join(h);
  const net::HostId host = 3;
  const auto id = system.join(host);

  // Saturate one of the host's attached links to 80%.
  const auto nb = system.oracle().topology().neighbors(host);
  ASSERT_FALSE(nb.empty());
  system.traffic().set_link_capacity(nb.front().link_index, 100.0);
  system.traffic().offer_flow(host, nb.front().host, 80.0);
  ASSERT_DOUBLE_EQ(system.traffic().host_utilization(host), 0.8);

  system.republish_now(id);
  std::size_t records = 0;
  system.maps().for_each_entry(
      [&](overlay::NodeId, const softstate::StoredEntry& stored) {
        if (stored.entry.node != id) return;
        ++records;
        EXPECT_DOUBLE_EQ(stored.entry.load, 0.8);
      });
  EXPECT_GT(records, 0u);
}

TEST(TrafficSystem, SaturatingARepresentativeDrivesReselection) {
  const net::Topology t = make_topology(5);
  SystemConfig config = small_config();
  config.traffic.enabled = true;
  config.load_weight = 50.0;    // Section 6 selector, load-dominant
  config.load_threshold = 0.6;  // QoS watch
  SoftStateOverlay system(t, config);

  const auto hosts = random_hosts(t, 64, 300);
  std::vector<overlay::NodeId> nodes;
  for (const auto host : hosts) nodes.push_back(system.join(host));

  // The most-watched representative: saturating it gives the most
  // subscriptions a reason (and enough alternatives) to move away.
  std::unordered_map<overlay::NodeId, std::size_t> watchers;
  system.pubsub().for_each_subscription(
      [&](pubsub::SubscriptionId, const pubsub::Subscription& s) {
        if (s.watched != overlay::kInvalidNode) ++watchers[s.watched];
      });
  ASSERT_FALSE(watchers.empty());
  const auto hot = std::max_element(watchers.begin(), watchers.end(),
                                    [](const auto& a, const auto& b) {
                                      return a.second < b.second;
                                    })
                       ->first;
  const std::size_t watched_before = watchers[hot];

  // Saturate every link attached to the hot node's host to 90%.
  const net::HostId hot_host = system.ecan().node(hot).host;
  for (const auto& nb : system.oracle().topology().neighbors(hot_host)) {
    system.traffic().set_link_capacity(nb.link_index, 100.0);
    system.traffic().offer_flow(hot_host, nb.host, 90.0);
  }
  ASSERT_GE(system.traffic().host_utilization(hot_host), 0.6);

  // Its next republish carries the saturation into the maps; the QoS
  // watches fire and the load-aware selector re-selects.
  const auto reselections_before = system.stats().reselections;
  system.republish_now(hot);
  EXPECT_GT(system.stats().reselections, reselections_before);

  std::size_t watched_after = 0;
  system.pubsub().for_each_subscription(
      [&](pubsub::SubscriptionId, const pubsub::Subscription& s) {
        if (s.watched == hot) ++watched_after;
      });
  // Re-selection moved watchers off the saturated representative.
  EXPECT_LT(watched_after, watched_before);
}

TEST(TrafficSystem, SameSeedRunsAreDeterministic) {
  const net::Topology t = make_topology(6);
  const auto hosts = random_hosts(t, 48, 400);

  const auto run = [&](std::uint64_t seed) {
    SystemConfig config = small_config();
    config.seed = seed;
    config.traffic.enabled = true;
    // Thin links so the system's own control traffic saturates them and
    // the drop stream is actually exercised.
    config.traffic.intra_stub_capacity = 2.0;
    config.traffic.transit_stub_capacity = 2.0;
    config.traffic.intra_transit_capacity = 4.0;
    config.traffic.inter_transit_capacity = 4.0;
    config.traffic.utilization_window_ms = 1000.0;
    SoftStateOverlay system(t, config);
    std::vector<overlay::NodeId> nodes;
    for (const auto host : hosts) nodes.push_back(system.join(host));
    system.run_for(5000.0);
    util::Rng rng(9);
    std::uint64_t successes = 0;
    for (int trial = 0; trial < 100; ++trial) {
      const auto route = system.lookup(nodes[rng.next_u64(nodes.size())],
                                       geom::Point::random(2, rng));
      successes += route.success ? 1u : 0u;
    }
    const auto& ts = system.traffic().stats();
    return std::tuple(successes, ts.messages, ts.dropped, ts.delayed,
                      ts.queue_delay_ms, map_state(system).size());
  };
  const auto first = run(77);
  const auto second = run(77);
  EXPECT_EQ(first, second);
  // The thin-link config actually exercised congestion.
  EXPECT_GT(std::get<2>(first), 0u);
}

}  // namespace
}  // namespace topo::core
