#include "geom/point.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace topo::geom {
namespace {

TEST(TorusDelta, ShortWayAround) {
  EXPECT_DOUBLE_EQ(Point::torus_delta(0.1, 0.3), 0.2);
  EXPECT_DOUBLE_EQ(Point::torus_delta(0.3, 0.1), -0.2);
  // Wrap: 0.9 -> 0.1 is +0.2 through the seam.
  EXPECT_DOUBLE_EQ(Point::torus_delta(0.9, 0.1), 0.2);
  EXPECT_DOUBLE_EQ(Point::torus_delta(0.1, 0.9), -0.2);
}

TEST(TorusDelta, HalfwayIsPositiveHalf) {
  // The convention maps the ambiguous antipode to +0.5.
  EXPECT_DOUBLE_EQ(Point::torus_delta(0.0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(Point::torus_delta(0.5, 0.0), 0.5);
}

TEST(TorusDelta, BoundedByHalf) {
  for (double a = 0.0; a < 1.0; a += 0.09) {
    for (double b = 0.0; b < 1.0; b += 0.07) {
      const double d = Point::torus_delta(a, b);
      EXPECT_GT(d, -0.5);
      EXPECT_LE(d, 0.5);
    }
  }
}

TEST(Point, DimsAndIndexing) {
  Point p(3);
  p[0] = 0.1;
  p[1] = 0.2;
  p[2] = 0.3;
  EXPECT_EQ(p.dims(), 3u);
  EXPECT_DOUBLE_EQ(p[1], 0.2);
}

TEST(Point, Equality) {
  Point a(2);
  a[0] = 0.5;
  Point b(2);
  b[0] = 0.5;
  EXPECT_EQ(a, b);
  b[1] = 0.1;
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == Point(3));  // different dims
}

TEST(Point, TorusDistanceIdentity) {
  Point p(4);
  for (std::size_t i = 0; i < 4; ++i) p[i] = 0.2 * static_cast<double>(i);
  EXPECT_DOUBLE_EQ(p.torus_distance(p), 0.0);
}

TEST(Point, TorusDistanceSymmetric) {
  Point a(2);
  a[0] = 0.1;
  a[1] = 0.9;
  Point b(2);
  b[0] = 0.8;
  b[1] = 0.2;
  EXPECT_DOUBLE_EQ(a.torus_distance(b), b.torus_distance(a));
}

TEST(Point, TorusDistanceUsesWrap) {
  Point a(1);
  a[0] = 0.05;
  Point b(1);
  b[0] = 0.95;
  EXPECT_NEAR(a.torus_distance(b), 0.1, 1e-12);
}

TEST(Point, TorusDistanceMaximum) {
  // Antipodal in 2-d: sqrt(0.25 + 0.25).
  Point a(2);
  Point b(2);
  b[0] = 0.5;
  b[1] = 0.5;
  EXPECT_NEAR(a.torus_distance(b), std::sqrt(0.5), 1e-12);
}

TEST(Point, RandomStaysInUnitBox) {
  util::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const Point p = Point::random(5, rng);
    for (std::size_t d = 0; d < 5; ++d) {
      EXPECT_GE(p[d], 0.0);
      EXPECT_LT(p[d], 1.0);
    }
  }
}

TEST(Point, ToString) {
  Point p(2);
  p[0] = 0.25;
  p[1] = 0.5;
  EXPECT_EQ(p.to_string(), "(0.2500, 0.5000)");
}

}  // namespace
}  // namespace topo::geom
