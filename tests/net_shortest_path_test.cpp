#include "net/shortest_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "util/rng.hpp"

namespace topo::net {
namespace {

/// Reference: Bellman-Ford (O(VE), fine for tiny graphs).
std::vector<double> bellman_ford(const Topology& t, HostId source) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(t.host_count(), kInf);
  dist[source] = 0.0;
  for (std::size_t pass = 0; pass + 1 < t.host_count(); ++pass) {
    bool changed = false;
    for (const Link& link : t.links()) {
      if (dist[link.a] + link.latency_ms < dist[link.b]) {
        dist[link.b] = dist[link.a] + link.latency_ms;
        changed = true;
      }
      if (dist[link.b] + link.latency_ms < dist[link.a]) {
        dist[link.a] = dist[link.b] + link.latency_ms;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

Topology random_topology(std::uint64_t seed, LatencyModel model) {
  util::Rng rng(seed);
  Topology t = generate_transit_stub(tsk_tiny(), rng);
  assign_latencies(t, model, rng);
  return t;
}

class DijkstraVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraVsReference, MatchesBellmanFord) {
  const Topology t = random_topology(GetParam(), LatencyModel::kGtItmRandom);
  util::Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 4; ++trial) {
    const auto source = static_cast<HostId>(rng.next_u64(t.host_count()));
    const auto fast = dijkstra(t, source);
    const auto reference = bellman_ford(t, source);
    ASSERT_EQ(fast.size(), reference.size());
    for (std::size_t i = 0; i < fast.size(); ++i)
      EXPECT_NEAR(fast[i], reference[i], 1e-9) << "host " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraVsReference,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 42));

TEST(Dijkstra, SelfDistanceZero) {
  const Topology t = random_topology(9, LatencyModel::kManual);
  EXPECT_DOUBLE_EQ(dijkstra(t, 0)[0], 0.0);
}

TEST(Dijkstra, SymmetricOnUndirectedGraph) {
  const Topology t = random_topology(13, LatencyModel::kGtItmRandom);
  const auto from_zero = dijkstra(t, 0);
  const auto from_ten = dijkstra(t, 10);
  EXPECT_NEAR(from_zero[10], from_ten[0], 1e-9);
}

TEST(Dijkstra, TriangleInequalityHoldsOnShortestPaths) {
  const Topology t = random_topology(17, LatencyModel::kGtItmRandom);
  const auto d0 = dijkstra(t, 0);
  const auto d5 = dijkstra(t, 5);
  for (HostId k = 0; k < t.host_count(); ++k)
    EXPECT_LE(d0[5], d0[k] + d5[k] + 1e-9);
}

TEST(DijkstraWithin, TruncatesBeyondRadius) {
  const Topology t = random_topology(19, LatencyModel::kManual);
  const auto full = dijkstra(t, 0);
  double radius = 0.0;
  for (double d : full)
    if (d < std::numeric_limits<double>::infinity()) radius = std::max(radius, d);
  radius /= 2.0;
  const auto truncated = dijkstra_within(t, 0, radius);
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] <= radius)
      EXPECT_NEAR(truncated[i], full[i], 1e-9);
    else
      EXPECT_TRUE(std::isinf(truncated[i]));
  }
}

TEST(HostsWithinHops, RadiusZeroIsSelf) {
  const Topology t = random_topology(23, LatencyModel::kManual);
  const auto hosts = hosts_within_hops(t, 3, 0);
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0], 3u);
}

TEST(HostsWithinHops, RadiusOneIsNeighbors) {
  const Topology t = random_topology(29, LatencyModel::kManual);
  const auto hosts = hosts_within_hops(t, 3, 1);
  EXPECT_EQ(hosts.size(), 1 + t.neighbors(3).size());
}

TEST(HostsWithinHops, GrowsMonotonicallyToWholeGraph) {
  const Topology t = random_topology(31, LatencyModel::kManual);
  std::size_t previous = 0;
  for (int radius = 0; radius < 64; ++radius) {
    const auto hosts = hosts_within_hops(t, 0, radius);
    EXPECT_GE(hosts.size(), previous);
    previous = hosts.size();
    if (hosts.size() == t.host_count()) break;
  }
  EXPECT_EQ(previous, t.host_count());  // graph diameter < 64 hops
}

}  // namespace
}  // namespace topo::net
