#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace topo::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, KnownValues) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(5);
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double(-10, 10);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  a.add(3.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Samples, PercentilesOnKnownData) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Samples, MeanStddevMatchAccumulator) {
  Rng rng(7);
  Samples s;
  Accumulator acc;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.next_double(0, 100);
    s.add(v);
    acc.add(v);
  }
  EXPECT_NEAR(s.mean(), acc.mean(), 1e-9);
  EXPECT_NEAR(s.stddev(), acc.stddev(), 1e-9);
}

TEST(Samples, AddAfterSortedAccessInvalidatesCache) {
  Samples s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // after a sorted access: cache must be invalidated
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Samples, DescribeMentionsCount) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_NE(s.describe().find("n=2"), std::string::npos);
  Samples empty;
  EXPECT_EQ(empty.describe(), "(no samples)");
}

TEST(Gini, UniformIsZero) {
  EXPECT_NEAR(gini_coefficient({5, 5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(Gini, ExtremeConcentration) {
  // One holder of everything among many: approaches 1 - 1/n.
  std::vector<double> v(100, 0.0);
  v[0] = 1.0;
  EXPECT_NEAR(gini_coefficient(v), 0.99, 1e-9);
}

TEST(Gini, KnownSmallCase) {
  // {1, 3}: gini = 0.25.
  EXPECT_NEAR(gini_coefficient({1.0, 3.0}), 0.25, 1e-12);
}

TEST(Gini, EmptyAndZeroSafe) {
  EXPECT_EQ(gini_coefficient({}), 0.0);
  EXPECT_EQ(gini_coefficient({0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace topo::util
