#include "proximity/nn_search.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::proximity {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<LandmarkSet> landmarks;
  ProximityDatabase database;

  explicit Fixture(std::uint64_t seed, int landmark_count = 8) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<LandmarkSet>(LandmarkSet::choose_random(
        topology, landmark_count, rng, LandmarkConfig{}));
    // Database of every 3rd host.
    for (net::HostId h = 1; h < topology.host_count(); h += 3)
      database.push_back(
          ProximityRecord{h, landmarks->measure(*oracle, h)});
  }
};

TEST(RankByLandmarkDistance, OrderAndLimit) {
  Fixture f(1);
  const LandmarkVector query = f.landmarks->measure(*f.oracle, 0);
  const auto ranked = rank_by_landmark_distance(f.database, query, 10);
  ASSERT_EQ(ranked.size(), 10u);
  // Verify ordering by recomputing distances.
  auto dist_of = [&](net::HostId h) {
    for (const auto& record : f.database)
      if (record.host == h) return vector_distance(record.vector, query);
    ADD_FAILURE();
    return -1.0;
  };
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(dist_of(ranked[i - 1]), dist_of(ranked[i]) + 1e-12);
}

TEST(RankByLandmarkDistance, LimitLargerThanDatabase) {
  Fixture f(2);
  const LandmarkVector query = f.landmarks->measure(*f.oracle, 0);
  const auto ranked =
      rank_by_landmark_distance(f.database, query, f.database.size() + 100);
  EXPECT_EQ(ranked.size(), f.database.size());
}

TEST(HybridNnSearch, BudgetOneIsLandmarkOnly) {
  Fixture f(3);
  const net::HostId query = 0;
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
  f.oracle->reset_probe_count();
  const NnResult result = hybrid_nn_search(*f.oracle, query, qv, f.database, 1);
  EXPECT_EQ(result.probes, 1u);
  EXPECT_EQ(f.oracle->probe_count(), 1u);
  // It returns exactly the landmark-space top candidate.
  const auto top = rank_by_landmark_distance(f.database, qv, 1);
  EXPECT_EQ(result.host, top[0]);
}

TEST(HybridNnSearch, MoreProbesNeverWorse) {
  Fixture f(4);
  const net::HostId query = 50;
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
  double previous = std::numeric_limits<double>::infinity();
  for (std::size_t budget : {1u, 2u, 5u, 10u, 20u, 40u}) {
    const NnResult result =
        hybrid_nn_search(*f.oracle, query, qv, f.database, budget);
    EXPECT_LE(result.rtt_ms, previous + 1e-12);
    previous = result.rtt_ms;
  }
}

TEST(HybridNnSearch, FullBudgetFindsTrueNearest) {
  Fixture f(5);
  const net::HostId query = 7;
  const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
  const NnResult result = hybrid_nn_search(*f.oracle, query, qv, f.database,
                                           f.database.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& record : f.database)
    best = std::min(best, f.oracle->latency_ms(query, record.host));
  EXPECT_DOUBLE_EQ(result.rtt_ms, best);
}

TEST(HybridNnSearch, GoodStretchWithSmallBudget) {
  // The paper's core claim: a handful of RTT probes guided by landmarks
  // gets close to the true nearest neighbor.
  Fixture f(6, 12);
  util::Rng rng(60);
  double stretch_total = 0.0;
  int queries = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto query =
        static_cast<net::HostId>(rng.next_u64(f.topology.host_count()));
    const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
    const NnResult result =
        hybrid_nn_search(*f.oracle, query, qv, f.database, 10);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& record : f.database) {
      if (record.host == query) continue;
      best = std::min(best, f.oracle->latency_ms(query, record.host));
    }
    if (best <= 0.0) continue;
    stretch_total += result.rtt_ms / best;
    ++queries;
  }
  ASSERT_GT(queries, 0);
  EXPECT_LT(stretch_total / queries, 3.0);
}

TEST(ErsCurve, MonotoneNonIncreasing) {
  Fixture f(7);
  util::Rng rng(70);
  overlay::CanNetwork can(2);
  for (net::HostId h = 0; h < f.topology.host_count(); ++h)
    can.join_random(h, rng);
  const auto curve =
      ers_best_rtt_curve(can, *f.oracle, 0, can.live_nodes()[0], 60, rng);
  ASSERT_EQ(curve.size(), 60u);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i], curve[i - 1] + 1e-12);
}

TEST(ErsCurve, CountsProbes) {
  Fixture f(8);
  util::Rng rng(80);
  overlay::CanNetwork can(2);
  for (net::HostId h = 0; h < 50; ++h) can.join_random(h, rng);
  f.oracle->reset_probe_count();
  ers_best_rtt_curve(can, *f.oracle, 0, can.live_nodes()[0], 25, rng);
  EXPECT_EQ(f.oracle->probe_count(), 25u);
}

TEST(ErsCurve, ExhaustedOverlayPadsWithBest) {
  Fixture f(9);
  util::Rng rng(90);
  overlay::CanNetwork can(2);
  for (net::HostId h = 0; h < 5; ++h) can.join_random(h, rng);
  const auto curve =
      ers_best_rtt_curve(can, *f.oracle, 0, can.live_nodes()[0], 20, rng);
  ASSERT_EQ(curve.size(), 20u);
  EXPECT_DOUBLE_EQ(curve[19], curve[4]);  // padded after 5 visits
}

TEST(ErsCurve, NeedsManyProbesToMatchHybrid) {
  // The paper's Figures 3-6: ERS is far less probe-efficient than
  // landmark-guided probing on the same budget.
  Fixture f(10, 12);
  util::Rng rng(100);
  overlay::CanNetwork can(2);
  for (net::HostId h = 0; h < f.topology.host_count(); ++h)
    can.join_random(h, rng);

  double hybrid_total = 0.0;
  double ers_total = 0.0;
  const std::size_t budget = 10;
  int queries = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto query =
        static_cast<net::HostId>(rng.next_u64(f.topology.host_count()));
    const LandmarkVector qv = f.landmarks->measure(*f.oracle, query);
    const NnResult hybrid =
        hybrid_nn_search(*f.oracle, query, qv, f.database, budget);
    const overlay::NodeId start =
        can.live_nodes()[rng.next_u64(can.size())];
    const auto ers =
        ers_best_rtt_curve(can, *f.oracle, query, start, budget, rng);
    hybrid_total += hybrid.rtt_ms;
    ers_total += ers.back();
    ++queries;
  }
  EXPECT_LE(hybrid_total, ers_total);
}

}  // namespace
}  // namespace topo::proximity
