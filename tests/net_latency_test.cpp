#include "net/latency.hpp"

#include <gtest/gtest.h>

#include "net/transit_stub.hpp"

namespace topo::net {
namespace {

Topology tiny(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return generate_transit_stub(tsk_tiny(), rng);
}

TEST(Latency, ManualAssignsClassConstants) {
  Topology t = tiny();
  util::Rng rng(2);
  const ManualLatencies manual;
  assign_latencies(t, LatencyModel::kManual, rng, manual);
  for (const Link& link : t.links()) {
    switch (link.link_class) {
      case LinkClass::kInterTransit:
        EXPECT_DOUBLE_EQ(link.latency_ms, manual.inter_transit_ms);
        break;
      case LinkClass::kIntraTransit:
        EXPECT_DOUBLE_EQ(link.latency_ms, manual.intra_transit_ms);
        break;
      case LinkClass::kTransitStub:
        EXPECT_DOUBLE_EQ(link.latency_ms, manual.transit_stub_ms);
        break;
      case LinkClass::kIntraStub:
        EXPECT_DOUBLE_EQ(link.latency_ms, manual.intra_stub_ms);
        break;
    }
  }
}

TEST(Latency, ManualOrderingIsHierarchical) {
  const ManualLatencies manual;
  EXPECT_GT(manual.inter_transit_ms, manual.intra_transit_ms);
  EXPECT_GT(manual.intra_transit_ms, manual.transit_stub_ms);
  EXPECT_GE(manual.transit_stub_ms, manual.intra_stub_ms);
}

TEST(Latency, RandomStaysInClassRanges) {
  Topology t = tiny();
  util::Rng rng(3);
  const GtItmRandomLatencies ranges;
  assign_latencies(t, LatencyModel::kGtItmRandom, rng, {}, ranges);
  for (const Link& link : t.links()) {
    switch (link.link_class) {
      case LinkClass::kInterTransit:
        EXPECT_GE(link.latency_ms, ranges.inter_transit_lo);
        EXPECT_LT(link.latency_ms, ranges.inter_transit_hi);
        break;
      case LinkClass::kIntraTransit:
        EXPECT_GE(link.latency_ms, ranges.intra_transit_lo);
        EXPECT_LT(link.latency_ms, ranges.intra_transit_hi);
        break;
      case LinkClass::kTransitStub:
        EXPECT_GE(link.latency_ms, ranges.transit_stub_lo);
        EXPECT_LT(link.latency_ms, ranges.transit_stub_hi);
        break;
      case LinkClass::kIntraStub:
        EXPECT_GE(link.latency_ms, ranges.intra_stub_lo);
        EXPECT_LT(link.latency_ms, ranges.intra_stub_hi);
        break;
    }
  }
}

TEST(Latency, RandomIsIrregular) {
  Topology t = tiny();
  util::Rng rng(5);
  assign_latencies(t, LatencyModel::kGtItmRandom, rng);
  // Two links of the same class should (almost surely) differ.
  double first_intra_stub = -1.0;
  bool found_different = false;
  for (const Link& link : t.links()) {
    if (link.link_class != LinkClass::kIntraStub) continue;
    if (first_intra_stub < 0.0)
      first_intra_stub = link.latency_ms;
    else if (link.latency_ms != first_intra_stub)
      found_different = true;
  }
  EXPECT_TRUE(found_different);
}

TEST(Latency, ModelNames) {
  EXPECT_STREQ(latency_model_name(LatencyModel::kManual), "manual");
  EXPECT_STREQ(latency_model_name(LatencyModel::kGtItmRandom), "gtitm");
}

}  // namespace
}  // namespace topo::net
