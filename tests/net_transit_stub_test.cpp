#include "net/transit_stub.hpp"

#include <algorithm>
#include <map>
#include <string>

#include <gtest/gtest.h>

namespace topo::net {
namespace {

TEST(TransitStubPresets, HostCountsMatchPaperScale) {
  EXPECT_EQ(tsk_large().total_hosts(), 32 + 9984);
  EXPECT_EQ(tsk_small().total_hosts(), 8 + 9984);
  // The contrast the paper relies on: same edge size, different backbones.
  EXPECT_GT(tsk_large().transit_domains, tsk_small().transit_domains);
  EXPECT_LT(tsk_large().hosts_per_stub, tsk_small().hosts_per_stub);
}

class TransitStubStructure
    : public ::testing::TestWithParam<std::pair<const char*, std::uint64_t>> {
 protected:
  TransitStubConfig config() const {
    const std::string name = GetParam().first;
    if (name == "tiny") return tsk_tiny();
    TransitStubConfig c = tsk_tiny();
    if (name == "multihomed") {
      c.stub_multihome_probability = 0.5;
      c.name = "multihomed";
    }
    if (name == "single-domain") {
      c.transit_domains = 1;
      c.name = "single-domain";
    }
    if (name == "one-host-stubs") {
      c.hosts_per_stub = 1;
      c.name = "one-host-stubs";
    }
    return c;
  }
};

TEST_P(TransitStubStructure, GeneratesValidTopology) {
  util::Rng rng(GetParam().second);
  const TransitStubConfig c = config();
  const Topology t = generate_transit_stub(c, rng);

  EXPECT_EQ(static_cast<int>(t.host_count()), c.total_hosts());
  EXPECT_TRUE(t.is_connected());

  // Transit / stub counts.
  const auto transit = t.hosts_of_kind(HostKind::kTransit);
  EXPECT_EQ(static_cast<int>(transit.size()),
            c.transit_domains * c.transit_nodes_per_domain);

  // Stub domains are correctly sized and homogeneous.
  std::map<int, int> stub_sizes;
  for (HostId h = 0; h < t.host_count(); ++h) {
    const HostInfo& info = t.host(h);
    if (info.kind == HostKind::kStub) {
      ASSERT_GE(info.stub_domain, 0);
      ++stub_sizes[info.stub_domain];
    }
  }
  const int expected_stub_domains = c.transit_domains *
                                    c.transit_nodes_per_domain *
                                    c.stub_domains_per_transit;
  EXPECT_EQ(static_cast<int>(stub_sizes.size()), expected_stub_domains);
  for (const auto& [domain, size] : stub_sizes) {
    (void)domain;
    EXPECT_EQ(size, c.hosts_per_stub);
  }
}

TEST_P(TransitStubStructure, LinkClassesAreConsistent) {
  util::Rng rng(GetParam().second);
  const TransitStubConfig c = config();
  const Topology t = generate_transit_stub(c, rng);

  for (const Link& link : t.links()) {
    const HostInfo& a = t.host(link.a);
    const HostInfo& b = t.host(link.b);
    switch (link.link_class) {
      case LinkClass::kInterTransit:
        EXPECT_EQ(a.kind, HostKind::kTransit);
        EXPECT_EQ(b.kind, HostKind::kTransit);
        EXPECT_NE(a.transit_domain, b.transit_domain);
        break;
      case LinkClass::kIntraTransit:
        EXPECT_EQ(a.kind, HostKind::kTransit);
        EXPECT_EQ(b.kind, HostKind::kTransit);
        EXPECT_EQ(a.transit_domain, b.transit_domain);
        break;
      case LinkClass::kTransitStub:
        EXPECT_NE(a.kind, b.kind);
        break;
      case LinkClass::kIntraStub:
        EXPECT_EQ(a.kind, HostKind::kStub);
        EXPECT_EQ(b.kind, HostKind::kStub);
        EXPECT_EQ(a.stub_domain, b.stub_domain);
        break;
    }
  }
}

TEST_P(TransitStubStructure, DeterministicGivenSeed) {
  const TransitStubConfig c = config();
  util::Rng rng1(GetParam().second);
  util::Rng rng2(GetParam().second);
  const Topology t1 = generate_transit_stub(c, rng1);
  const Topology t2 = generate_transit_stub(c, rng2);
  ASSERT_EQ(t1.link_count(), t2.link_count());
  for (std::size_t i = 0; i < t1.link_count(); ++i) {
    EXPECT_EQ(t1.links()[i].a, t2.links()[i].a);
    EXPECT_EQ(t1.links()[i].b, t2.links()[i].b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, TransitStubStructure,
    ::testing::Values(std::make_pair("tiny", 1ULL),
                      std::make_pair("tiny", 99ULL),
                      std::make_pair("multihomed", 2ULL),
                      std::make_pair("single-domain", 3ULL),
                      std::make_pair("one-host-stubs", 4ULL)),
    [](const auto& info) {
      std::string name = std::string(info.param.first) + "_seed" +
                         std::to_string(info.param.second);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(TransitStubFull, PaperScaleTopologiesGenerate) {
  // The two ~10k-host presets build and are connected (used by benches).
  for (const TransitStubConfig& c : {tsk_large(), tsk_small()}) {
    util::Rng rng(7);
    const Topology t = generate_transit_stub(c, rng);
    EXPECT_EQ(static_cast<int>(t.host_count()), c.total_hosts());
    EXPECT_TRUE(t.is_connected());
  }
}

}  // namespace
}  // namespace topo::net
