// Concurrency coverage for the thread-safe RTT oracle: many threads
// hammering latency_ms / probe_rtt must (a) return exactly the values a
// single-threaded oracle returns, (b) never run duplicate Dijkstras for a
// source under construction races, and (c) stay correct when bounded-memory
// eviction is churning rows underneath the readers. Run under the tsan
// preset (cmake --preset tsan) to catch data races, not just wrong answers.
#include "net/rtt_oracle.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/shortest_path.hpp"
#include "net/transit_stub.hpp"
#include "util/thread_pool.hpp"

namespace topo::net {
namespace {

constexpr unsigned kThreads = 8;

Topology tiny_with_latencies(std::uint64_t seed) {
  util::Rng rng(seed);
  Topology t = generate_transit_stub(tsk_tiny(), rng);
  assign_latencies(t, LatencyModel::kGtItmRandom, rng);
  return t;
}

/// A deterministic batch of query pairs, independent of thread count.
std::vector<std::pair<HostId, HostId>> query_batch(const Topology& t,
                                                   std::uint64_t seed,
                                                   std::size_t count,
                                                   std::size_t host_limit) {
  const auto hosts = std::min<std::size_t>(host_limit, t.host_count());
  std::vector<std::pair<HostId, HostId>> pairs(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto rng = util::rng_for_index(seed, i);
    pairs[i] = {static_cast<HostId>(rng.next_u64(hosts)),
                static_cast<HostId>(rng.next_u64(t.host_count()))};
  }
  return pairs;
}

TEST(RttOracleParallel, MatchesSingleThreadedOracleExactly) {
  const Topology t = tiny_with_latencies(21);
  const auto pairs = query_batch(t, 31, 4096, 64);

  RttOracle serial(t);
  std::vector<double> expected(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    expected[i] = serial.latency_ms(pairs[i].first, pairs[i].second);

  RttOracle shared(t);
  util::ThreadPool pool(kThreads);
  std::vector<double> actual(pairs.size());
  pool.parallel_for(0, pairs.size(), 7, [&](std::size_t i) {
    actual[i] = shared.latency_ms(pairs[i].first, pairs[i].second);
  });

  for (std::size_t i = 0; i < pairs.size(); ++i)
    ASSERT_EQ(actual[i], expected[i]) << "query " << i;
}

TEST(RttOracleParallel, NoDuplicateRowConstructionUnderRaces) {
  const Topology t = tiny_with_latencies(22);
  // Few sources, many threads: maximal construction contention.
  const auto pairs = query_batch(t, 32, 2048, 8);
  // Rows are only ever built for the `from` endpoint, and double-checked
  // locking must collapse every construction race to one Dijkstra.
  std::set<HostId> touched;
  for (const auto& [from, to] : pairs) touched.insert(from);

  RttOracle oracle(t, RttEngineKind::kDijkstra);
  util::ThreadPool pool(kThreads);
  pool.parallel_for(0, pairs.size(), 3, [&](std::size_t i) {
    (void)oracle.latency_ms(pairs[i].first, pairs[i].second);
  });
  EXPECT_LE(oracle.dijkstra_runs(), touched.size());
  EXPECT_GE(oracle.dijkstra_runs(), 1u);
}

TEST(RttOracleParallel, ProbeRttCountsAndStaysExactWithoutNoise) {
  const Topology t = tiny_with_latencies(23);
  const auto pairs = query_batch(t, 33, 1024, 32);

  RttOracle serial(t);
  std::vector<double> expected(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    expected[i] = serial.latency_ms(pairs[i].first, pairs[i].second);

  RttOracle shared(t);
  util::ThreadPool pool(kThreads);
  std::vector<double> actual(pairs.size());
  pool.parallel_for(0, pairs.size(), 5, [&](std::size_t i) {
    actual[i] = shared.probe_rtt(pairs[i].first, pairs[i].second);
  });
  EXPECT_EQ(shared.probe_count(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    ASSERT_EQ(actual[i], expected[i]) << "probe " << i;
}

TEST(RttOracleParallel, NoisyProbesStayWithinBandUnderConcurrency) {
  const Topology t = tiny_with_latencies(24);
  const auto pairs = query_batch(t, 34, 512, 16);

  RttOracle serial(t);
  RttOracle shared(t);
  shared.set_measurement_noise(0.2, 77);
  util::ThreadPool pool(kThreads);
  std::atomic<int> out_of_band{0};
  pool.parallel_for(0, pairs.size(), 5, [&](std::size_t i) {
    const double truth = serial.latency_ms(pairs[i].first, pairs[i].second);
    const double sample = shared.probe_rtt(pairs[i].first, pairs[i].second);
    if (sample < truth * 0.8 - 1e-9 || sample > truth * 1.2 + 1e-9)
      out_of_band.fetch_add(1);
  });
  EXPECT_EQ(out_of_band.load(), 0);
}

TEST(RttOracleParallel, EvictionModeNeverReturnsWrongLatency) {
  const Topology t = tiny_with_latencies(25);
  const auto pairs = query_batch(t, 35, 4096, 48);

  RttOracle serial(t);
  std::vector<double> expected(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    expected[i] = serial.latency_ms(pairs[i].first, pairs[i].second);

  // A cap far below the working set keeps eviction churning while the
  // readers run; every answer must still be the exact Dijkstra value.
  RttOracle bounded(t, RttEngineKind::kDijkstra);
  bounded.set_row_cap(4);
  util::ThreadPool pool(kThreads);
  std::vector<double> actual(pairs.size());
  pool.parallel_for(0, pairs.size(), 3, [&](std::size_t i) {
    actual[i] = bounded.latency_ms(pairs[i].first, pairs[i].second);
  });
  for (std::size_t i = 0; i < pairs.size(); ++i)
    ASSERT_EQ(actual[i], expected[i]) << "query " << i;
  EXPECT_LE(bounded.cached_rows(), 4u + kThreads);  // transient overshoot
}

TEST(RttOracleParallel, ParallelWarmPinsEachSourceOnce) {
  const Topology t = tiny_with_latencies(26);
  std::vector<HostId> sources;
  for (HostId h = 0; h < 32; ++h) sources.push_back(h);
  // Duplicates must not trigger duplicate Dijkstras either.
  sources.insert(sources.end(), sources.begin(), sources.begin() + 8);

  RttOracle oracle(t, RttEngineKind::kDijkstra);
  util::ThreadPool pool(kThreads);
  oracle.warm(sources, pool);
  EXPECT_EQ(oracle.dijkstra_runs(), 32u);
  EXPECT_EQ(oracle.cached_rows(), 32u);

  const auto reference = dijkstra(t, 5);
  for (HostId h = 0; h < t.host_count(); h += 11)
    EXPECT_DOUBLE_EQ(oracle.latency_ms(5, h), reference[h]);
  EXPECT_EQ(oracle.dijkstra_runs(), 32u);  // all served from warmed rows
}

TEST(RttOracleParallel, WarmedRowsSurviveBoundedChurn) {
  const Topology t = tiny_with_latencies(27);
  RttOracle oracle(t, RttEngineKind::kDijkstra);
  oracle.set_row_cap(6);
  const std::vector<HostId> landmarks = {0, 1, 2, 3};
  util::ThreadPool pool(kThreads);
  oracle.warm(landmarks, pool);

  const auto pairs = query_batch(t, 36, 2048, 64);
  pool.parallel_for(0, pairs.size(), 5, [&](std::size_t i) {
    (void)oracle.latency_ms(pairs[i].first, pairs[i].second);
  });

  const auto runs = oracle.dijkstra_runs();
  for (const HostId lm : landmarks) (void)oracle.latency_ms(lm, 100);
  EXPECT_EQ(oracle.dijkstra_runs(), runs);  // pinned rows never evicted
}

}  // namespace
}  // namespace topo::net
