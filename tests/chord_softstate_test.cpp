#include "core/chord_selectors.hpp"
#include "softstate/chord_maps.hpp"

#include <memory>

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::ChordNetwork> chord;
  std::unique_ptr<softstate::ChordMapService> maps;
  core::ChordVectorStore vectors;
  std::vector<overlay::NodeId> nodes;

  explicit Fixture(std::uint64_t seed, std::size_t n = 128) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 8, rng, {}));
    chord = std::make_unique<overlay::ChordNetwork>(24);
    core::ClassicFingerSelector classic;
    for (std::size_t i = 0; i < n; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(chord->join_random(host, rng));
    }
    chord->build_all_fingers(classic);
    maps = std::make_unique<softstate::ChordMapService>(*chord, *landmarks);
    for (const auto id : nodes) {
      vectors[id] = landmarks->measure(*oracle, chord->node(id).host);
      maps->publish(id, vectors[id], 0.0);
    }
  }
};

TEST(ChordMaps, KeyPreservesLandmarkNumberOrder) {
  Fixture f(1);
  const auto n1 = util::BigUint(5) << (f.landmarks->number_bits() - 8);
  const auto n2 = util::BigUint(9) << (f.landmarks->number_bits() - 8);
  EXPECT_LT(f.maps->key_of(n1), f.maps->key_of(n2));
}

TEST(ChordMaps, PublishStoresAtSuccessorOfKey) {
  Fixture f(2);
  const auto id = f.nodes[0];
  const auto key =
      f.maps->key_of(f.landmarks->landmark_number(f.vectors[id]));
  const auto owner = f.chord->successor_of(key);
  EXPECT_GT(f.maps->store_size(owner), 0u);
}

TEST(ChordMaps, RepublishReplaces) {
  Fixture f(3);
  const std::size_t before = f.maps->total_entries();
  f.maps->publish(f.nodes[0], f.vectors[f.nodes[0]], 100.0);
  EXPECT_EQ(f.maps->total_entries(), before);
}

TEST(ChordMaps, LookupReturnsPhysicallyClosePeers) {
  Fixture f(4, 192);
  const auto querier = f.nodes[0];
  const auto entries = f.maps->lookup(querier, f.vectors[querier], 0.0);
  ASSERT_FALSE(entries.empty());
  // Sorted by landmark distance and excludes the querier.
  for (std::size_t i = 1; i < entries.size(); ++i)
    EXPECT_LE(proximity::vector_distance(entries[i - 1].vector,
                                         f.vectors[querier]),
              proximity::vector_distance(entries[i].vector,
                                         f.vectors[querier]) +
                  1e-12);
  for (const auto& entry : entries) EXPECT_NE(entry.node, querier);
}

TEST(ChordMaps, SuccessorWalkFillsThinPieces) {
  Fixture f(5);
  const auto querier = f.nodes[1];
  softstate::ChordLookupMeta meta;
  const auto entries =
      f.maps->lookup(querier, f.vectors[querier], 0.0, &meta);
  EXPECT_GE(meta.owners_visited, 1u);
  EXPECT_FALSE(entries.empty());
}

TEST(ChordMaps, TtlExpiry) {
  Fixture f(6);
  EXPECT_GT(f.maps->total_entries(), 0u);
  f.maps->expire_before(60'000.0);
  EXPECT_EQ(f.maps->total_entries(), 0u);
}

TEST(ChordMaps, RemoveEverywhereAndReportDead) {
  Fixture f(7);
  const auto victim = f.nodes[3];
  f.maps->remove_everywhere(victim);
  const auto entries = f.maps->lookup(f.nodes[0], f.vectors[f.nodes[0]], 0.0);
  for (const auto& entry : entries) EXPECT_NE(entry.node, victim);
}

TEST(ChordMaps, RehomeAfterOwnerDeparture) {
  Fixture f(8);
  // Find an owner hosting entries; make it leave and rehome.
  overlay::NodeId owner = overlay::kInvalidNode;
  for (const auto id : f.nodes)
    if (f.maps->store_size(id) > 0) {
      owner = id;
      break;
    }
  ASSERT_NE(owner, overlay::kInvalidNode);
  const std::size_t total = f.maps->total_entries();
  const std::size_t owned = f.maps->store_size(owner);
  f.chord->leave(owner);
  f.maps->rehome_from(owner);
  // Entries for the departed owner node itself are dropped; the rest move.
  EXPECT_GE(f.maps->total_entries(), total - owned);
  EXPECT_EQ(f.maps->store_size(owner), 0u);
  // And they are findable at the new successor of their keys.
  for (const auto id : f.nodes) {
    if (!f.chord->alive(id)) continue;
    const auto entries = f.maps->lookup(id, f.vectors[id], 0.0);
    EXPECT_FALSE(entries.empty());
    break;
  }
}

TEST(ChordSelectors, OraclePicksClosest) {
  Fixture f(9);
  core::OracleFingerSelector selector(*f.chord, *f.oracle);
  for (const auto n : f.nodes) {
    const auto [lo, hi] = f.chord->finger_interval(n, 20);
    const auto candidates = f.chord->nodes_in_interval(lo, hi);
    if (candidates.size() < 3) continue;
    const auto pick = selector.select(n, 20, candidates);
    const net::HostId from = f.chord->node(n).host;
    for (const auto c : candidates)
      EXPECT_LE(f.oracle->latency_ms(from, f.chord->node(pick).host),
                f.oracle->latency_ms(from, f.chord->node(c).host));
    return;
  }
  GTEST_SKIP() << "no populated finger interval";
}

TEST(ChordSelectors, SoftStateUsesOneMapLookupPerTable) {
  Fixture f(10, 192);
  core::SoftStateFingerSelector selector(*f.chord, *f.maps, *f.oracle,
                                         f.vectors, 16, util::Rng(99));
  f.chord->build_fingers(f.nodes[0], selector);
  EXPECT_EQ(selector.map_lookups(), 1u);
  f.chord->build_fingers(f.nodes[1], selector);
  EXPECT_EQ(selector.map_lookups(), 2u);
}

TEST(ChordSelectors, SoftStateFingersAreValid) {
  Fixture f(11, 192);
  core::SoftStateFingerSelector selector(*f.chord, *f.maps, *f.oracle,
                                         f.vectors, 16, util::Rng(7));
  f.chord->build_all_fingers(selector);
  EXPECT_TRUE(f.chord->check_invariants());
  // Routing still delivers everywhere.
  util::Rng rng(8);
  const auto live = f.chord->live_nodes();
  for (int trial = 0; trial < 50; ++trial) {
    const auto from = live[rng.next_u64(live.size())];
    const auto key = rng.next_u64(f.chord->ring_size());
    const auto route = f.chord->route(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), f.chord->successor_of(key));
  }
}

TEST(ChordSelectors, SoftStateImprovesStretchOverClassic) {
  Fixture f(12, 256);
  util::Rng rng(120);

  auto measure = [&](overlay::FingerSelector& selector) {
    f.chord->build_all_fingers(selector);
    util::Rng measure_rng(121);
    util::Samples stretch;
    const auto live = f.chord->live_nodes();
    for (int q = 0; q < 400; ++q) {
      const auto from = live[measure_rng.next_u64(live.size())];
      const auto key = measure_rng.next_u64(f.chord->ring_size());
      const auto route = f.chord->route(from, key);
      if (!route.success || route.path.size() < 2) continue;
      double path_latency = 0.0;
      for (std::size_t i = 1; i < route.path.size(); ++i)
        path_latency += f.oracle->latency_ms(
            f.chord->node(route.path[i - 1]).host,
            f.chord->node(route.path[i]).host);
      const double direct = f.oracle->latency_ms(
          f.chord->node(from).host, f.chord->node(route.path.back()).host);
      if (direct <= 0.0) continue;
      stretch.add(path_latency / direct);
    }
    return stretch.mean();
  };

  core::ClassicFingerSelector classic;
  core::SoftStateFingerSelector soft(*f.chord, *f.maps, *f.oracle, f.vectors,
                                     24, rng.fork());
  const double classic_stretch = measure(classic);
  const double soft_stretch = measure(soft);
  EXPECT_LT(soft_stretch, classic_stretch);
}

}  // namespace
}  // namespace topo
