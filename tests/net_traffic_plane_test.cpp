#include "net/traffic_plane.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/rtt_oracle.hpp"
#include "net/transit_stub.hpp"

namespace topo::net {
namespace {

/// A 3-host chain 0 -(link 0)- 1 -(link 1)- 2 with 5 ms links: exact
/// paths, so the queuing math can be asserted to the digit.
Topology chain_topology() {
  Topology t;
  HostInfo transit;
  transit.kind = HostKind::kTransit;
  transit.transit_domain = 0;
  t.add_host(transit);
  t.add_host(transit);
  HostInfo stub;
  stub.kind = HostKind::kStub;
  stub.transit_domain = 0;
  stub.stub_domain = 0;
  t.add_host(stub);
  t.add_link(0, 1, LinkClass::kIntraTransit);
  t.add_link(1, 2, LinkClass::kTransitStub);
  t.freeze();
  t.mutable_link(0).latency_ms = 5.0;
  t.mutable_link(1).latency_ms = 5.0;
  return t;
}

TrafficConfig enabled_config() {
  TrafficConfig config;
  config.enabled = true;
  config.seed = 7;
  return config;
}

TEST(TrafficPlane, InactiveByDefault) {
  TrafficPlane plane;
  EXPECT_FALSE(plane.active());
  // Enabled but unbound is still inactive (nothing to gate against).
  TrafficPlane unbound(enabled_config());
  EXPECT_FALSE(unbound.active());
}

TEST(TrafficPlane, CapacitiesAssignedPerLinkClass) {
  const Topology t = chain_topology();
  TrafficConfig config = enabled_config();
  config.intra_transit_capacity = 2000.0;
  config.transit_stub_capacity = 1000.0;
  TrafficPlane plane(config);
  plane.bind_topology(&t);
  EXPECT_TRUE(plane.active());
  EXPECT_DOUBLE_EQ(plane.link_capacity(0), 2000.0);
  EXPECT_DOUBLE_EQ(plane.link_capacity(1), 1000.0);
}

TEST(TrafficPlane, MM1QueuingDelayMath) {
  const Topology t = chain_topology();
  TrafficPlane plane(enabled_config());
  plane.bind_topology(&t);
  plane.set_link_capacity(0, 100.0);
  plane.set_link_capacity(1, 100.0);
  // 50 msg/s against 100 msg/s capacity: u = 0.5 on both links.
  plane.offer_flow(0, 2, 50.0);
  EXPECT_DOUBLE_EQ(plane.link_utilization(0), 0.5);
  EXPECT_DOUBLE_EQ(plane.link_utilization(1), 0.5);
  // Wq = (1000/100) * 0.5/0.5 = 10 ms per link one-way; the round-trip
  // term over the 2-link path is 2 * (10 + 10) = 40 ms.
  EXPECT_DOUBLE_EQ(plane.queuing_delay_ms(0, 2), 40.0);
  EXPECT_DOUBLE_EQ(plane.queuing_delay_ms(2, 0), 40.0);  // symmetric
  EXPECT_DOUBLE_EQ(plane.queuing_delay_ms(1, 1), 0.0);   // self: no links
}

TEST(TrafficPlane, DelayMonotoneInOfferedLoad) {
  const Topology t = chain_topology();
  TrafficPlane plane(enabled_config());
  plane.bind_topology(&t);
  plane.set_link_capacity(0, 100.0);
  plane.set_link_capacity(1, 100.0);
  double previous = 0.0;
  for (const double rate : {10.0, 30.0, 60.0, 90.0, 120.0}) {
    plane.clear_flows();
    plane.offer_flow(0, 2, rate);
    const double delay = plane.queuing_delay_ms(0, 2);
    EXPECT_GT(delay, previous) << "rate " << rate;
    previous = delay;
  }
  // Past the utilization cap the delay stays finite (drops take over).
  plane.clear_flows();
  plane.offer_flow(0, 2, 1e6);
  EXPECT_TRUE(std::isfinite(plane.queuing_delay_ms(0, 2)));
}

TEST(TrafficPlane, UncongestedMessagesAlwaysDeliver) {
  const Topology t = chain_topology();
  TrafficPlane plane(enabled_config());
  plane.bind_topology(&t);
  for (int i = 0; i < 100; ++i) {
    const auto verdict = plane.message(0, 2);
    EXPECT_TRUE(verdict.delivered);
    EXPECT_DOUBLE_EQ(verdict.delay_ms, 0.0);
  }
  EXPECT_EQ(plane.stats().messages, 100u);
  EXPECT_EQ(plane.stats().dropped, 0u);
  EXPECT_EQ(plane.stats().delayed, 0u);
}

TEST(TrafficPlane, SaturationDropsDeterministically) {
  const Topology t = chain_topology();
  TrafficConfig config = enabled_config();
  config.drop_threshold = 0.9;
  config.drop_full = 2.0;
  TrafficPlane plane(config);
  plane.bind_topology(&t);
  plane.set_link_capacity(0, 100.0);
  // 2x capacity = drop_full utilization: P(drop) = 1, no randomness left.
  plane.offer_flow(0, 1, 200.0);
  EXPECT_FALSE(plane.message(0, 1).delivered);
  EXPECT_EQ(plane.stats().dropped, 1u);
  // Partial saturation drops with the seeded stream: same seed, same
  // verdict sequence.
  plane.clear_flows();
  plane.offer_flow(0, 1, 130.0);  // u = 1.3 -> P(drop) ~ 0.36
  std::vector<bool> verdicts;
  for (int i = 0; i < 64; ++i) verdicts.push_back(plane.message(0, 1).delivered);
  EXPECT_NE(std::count(verdicts.begin(), verdicts.end(), false), 0);
  EXPECT_NE(std::count(verdicts.begin(), verdicts.end(), true), 0);

  TrafficPlane replay(config);
  replay.bind_topology(&t);
  replay.set_link_capacity(0, 100.0);
  replay.offer_flow(0, 1, 200.0);
  EXPECT_FALSE(replay.message(0, 1).delivered);
  replay.clear_flows();
  replay.offer_flow(0, 1, 130.0);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(replay.message(0, 1).delivered, verdicts[static_cast<std::size_t>(i)]);
}

TEST(TrafficPlane, HostUtilizationIsMaxOverAttachedLinks) {
  const Topology t = chain_topology();
  TrafficPlane plane(enabled_config());
  plane.bind_topology(&t);
  plane.set_link_capacity(0, 100.0);
  plane.set_link_capacity(1, 100.0);
  plane.offer_flow(0, 1, 80.0);  // loads link 0 only
  EXPECT_DOUBLE_EQ(plane.host_utilization(0), 0.8);
  EXPECT_DOUBLE_EQ(plane.host_utilization(1), 0.8);  // max(0.8, 0.0)
  EXPECT_DOUBLE_EQ(plane.host_utilization(2), 0.0);
}

TEST(TrafficPlane, GatedMessagesFoldIntoMeasuredRate) {
  const Topology t = chain_topology();
  TrafficPlane plane(enabled_config());
  plane.bind_topology(&t);
  plane.set_link_capacity(0, 100.0);
  plane.set_link_capacity(1, 100.0);
  for (int i = 0; i < 50; ++i) (void)plane.message(0, 2);
  // Before the window rolls over, counts are pending, not utilization.
  EXPECT_DOUBLE_EQ(plane.link_utilization(0), 0.0);
  plane.advance_to(1000.0);  // 50 messages / 1 s = 50 msg/s
  EXPECT_DOUBLE_EQ(plane.link_utilization(0), 0.5);
  EXPECT_DOUBLE_EQ(plane.link_utilization(1), 0.5);
  // An idle follow-up window decays the measured rate back to zero.
  plane.advance_to(2000.0);
  EXPECT_DOUBLE_EQ(plane.link_utilization(0), 0.0);
}

TEST(TrafficPlane, MessageViaComposesOverlayHops) {
  const Topology t = chain_topology();
  TrafficPlane plane(enabled_config());
  plane.bind_topology(&t);
  plane.set_link_capacity(0, 100.0);
  plane.set_link_capacity(1, 100.0);
  plane.offer_flow(0, 2, 50.0);  // 10 ms one-way per link
  const std::vector<HostId> path = {0, 1, 2};
  const auto verdict = plane.message_via(path, [](HostId h) { return h; });
  EXPECT_TRUE(verdict.delivered);
  // Hop 0->1 crosses link 0 (10 ms), hop 1->2 crosses link 1 (10 ms).
  EXPECT_DOUBLE_EQ(verdict.delay_ms, 20.0);
  const std::vector<HostId> self = {1};
  const auto self_verdict = plane.message_via(self, [](HostId h) { return h; });
  EXPECT_TRUE(self_verdict.delivered);
  EXPECT_DOUBLE_EQ(self_verdict.delay_ms, 0.0);
}

TEST(TrafficPlane, OracleComposesQueuingDelayOntoRtt) {
  util::Rng rng(11);
  Topology t = generate_transit_stub(tsk_tiny(), rng);
  assign_latencies(t, LatencyModel::kManual, rng);
  RttOracle oracle(t);
  const HostId a = 0;
  const HostId b = static_cast<HostId>(t.host_count() - 1);
  const double base = oracle.latency_ms(a, b);

  TrafficPlane plane(enabled_config());
  plane.bind_topology(&t);
  oracle.set_traffic_plane(&plane);
  // Idle plane: active, but zero utilization adds exactly nothing.
  EXPECT_DOUBLE_EQ(oracle.latency_ms(a, b), base);

  plane.offer_flow(a, b, 0.5 * plane.config().intra_stub_capacity);
  const double loaded = oracle.latency_ms(a, b);
  EXPECT_DOUBLE_EQ(loaded, base + plane.queuing_delay_ms(a, b));
  EXPECT_GT(loaded, base);

  // Bulk column matches the scalar path value for value.
  std::vector<HostId> froms;
  for (HostId h = 0; h < t.host_count(); ++h) froms.push_back(h);
  std::vector<double> column(froms.size());
  oracle.probe_rtt_many(froms, b, column);
  for (std::size_t i = 0; i < froms.size(); ++i)
    EXPECT_DOUBLE_EQ(column[i], oracle.latency_ms(froms[i], b)) << i;

  // Detaching restores the propagation-only value.
  oracle.set_traffic_plane(nullptr);
  EXPECT_DOUBLE_EQ(oracle.latency_ms(a, b), base);
}

}  // namespace
}  // namespace topo::net
