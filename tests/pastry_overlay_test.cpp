// End-to-end tests of the Pastry dynamic facade.
#include "core/pastry_overlay.hpp"

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::core {
namespace {

net::Topology make_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology t = net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(t, net::LatencyModel::kManual, rng);
  return t;
}

PastrySystemConfig small_config() {
  PastrySystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  return config;
}

TEST(PastryOverlay, JoinPublishesIntoPrefixMaps) {
  const net::Topology t = make_topology(1);
  PastrySoftStateOverlay system(t, small_config());
  util::Rng rng(10);
  for (int i = 0; i < 64; ++i)
    system.join(static_cast<net::HostId>(rng.next_u64(t.host_count())));
  EXPECT_EQ(system.pastry().size(), 64u);
  // One record per prefix row (4 by default) per node.
  EXPECT_EQ(system.maps().total_entries(), 64u * 4u);
  EXPECT_EQ(system.stats().joins, 64u);
}

TEST(PastryOverlay, LookupsReachOwner) {
  const net::Topology t = make_topology(2);
  PastrySoftStateOverlay system(t, small_config());
  util::Rng rng(20);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 80; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  for (int trial = 0; trial < 80; ++trial) {
    const auto from = nodes[rng.next_u64(nodes.size())];
    const auto key = rng.next_u64(system.pastry().ring_size());
    const overlay::RouteResult route = system.lookup(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), system.pastry().numerically_closest(key));
  }
}

TEST(PastryOverlay, LeaveScrubsOwnRecordsAndHandsStoreOver) {
  const net::Topology t = make_topology(3);
  PastrySoftStateOverlay system(t, small_config());
  util::Rng rng(30);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 48; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  const std::size_t before = system.maps().total_entries();
  system.leave(nodes[11]);
  EXPECT_EQ(system.maps().total_entries(), before - 4);  // its 4 records
  EXPECT_EQ(system.maps().store_size(nodes[11]), 0u);
  for (int trial = 0; trial < 20; ++trial) {
    const auto from = nodes[rng.next_u64(nodes.size())];
    if (!system.pastry().alive(from)) continue;
    EXPECT_TRUE(
        system.lookup(from, rng.next_u64(system.pastry().ring_size()))
            .success);
  }
}

TEST(PastryOverlay, CrashRecoversViaRepublish) {
  const net::Topology t = make_topology(4);
  PastrySystemConfig config = small_config();
  config.ttl_ms = 8'000.0;
  config.republish_interval_ms = 2'000.0;
  PastrySoftStateOverlay system(t, config);
  util::Rng rng(40);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 64; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(t.host_count()))));
  rng.shuffle(nodes);
  for (int i = 0; i < 16; ++i) system.crash(nodes[static_cast<std::size_t>(i)]);
  for (int trial = 0; trial < 40; ++trial) {
    const auto from = nodes[16 + rng.next_u64(nodes.size() - 16)];
    ASSERT_TRUE(
        system.lookup(from, rng.next_u64(system.pastry().ring_size()))
            .success);
  }
  system.run_for(3'000.0);
  // 48 survivors x 4 prefix rows, minus anything still decaying.
  EXPECT_GE(system.maps().total_entries(), 48u * 3u);
}

TEST(PastryOverlay, ChurnStaysConsistent) {
  const net::Topology t = make_topology(5);
  PastrySystemConfig config = small_config();
  config.ttl_ms = 20'000.0;
  config.republish_interval_ms = 5'000.0;
  PastrySoftStateOverlay system(t, config);
  util::Rng rng(50);
  std::vector<overlay::NodeId> live;
  for (int step = 0; step < 200; ++step) {
    const double dice = rng.next_double();
    if (live.size() < 8 || dice < 0.5) {
      live.push_back(system.join(
          static_cast<net::HostId>(rng.next_u64(t.host_count()))));
    } else if (dice < 0.75) {
      const std::size_t pick = rng.next_u64(live.size());
      system.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      system.crash(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    system.run_for(100.0);
    if (step % 50 == 49) {
      ASSERT_TRUE(system.maps().check_placement_invariant()) << "step " << step;
      const auto from = live[rng.next_u64(live.size())];
      ASSERT_TRUE(
          system.lookup(from, rng.next_u64(system.pastry().ring_size()))
              .success)
          << "step " << step;
    }
  }
  EXPECT_EQ(system.pastry().size(), live.size());
}

TEST(PastryOverlay, LastNodeLeaveIsClean) {
  const net::Topology t = make_topology(6);
  PastrySoftStateOverlay system(t, small_config());
  const auto only = system.join(0);
  system.leave(only);
  EXPECT_EQ(system.pastry().size(), 0u);
  EXPECT_EQ(system.maps().total_entries(), 0u);
}

}  // namespace
}  // namespace topo::core
