// Property tests: IndexedStore must be observably identical to
// LinearStoreRef (the seed-semantics linear store) under randomized op
// sequences, for all three backend trait sets (eCAN, Chord, Pastry) —
// same upsert outcomes, same erase/expiry counts, same group contents.
// The indexed structural invariants (hash index, per-node chains, ordered
// slot list, expiry heap) are re-checked throughout.
//
// The second half drives the full map service twins (MapService over the
// indexed store and fast router vs LegacyLinearMapService over the linear
// store and reference router) through identical publish/lookup/expiry/
// churn schedules and requires byte-identical lookup results and stats —
// the equivalence bench/scale_sweep.cpp's speedup numbers rest on.
#include "softstate/indexed_store.hpp"

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "softstate/chord_maps.hpp"
#include "softstate/linear_store_ref.hpp"
#include "softstate/map_service.hpp"
#include "softstate/pastry_maps.hpp"
#include "util/rng.hpp"

namespace topo::softstate {
namespace {

// ---------------------------------------------------------------------
// Store twins under randomized op sequences
// ---------------------------------------------------------------------

/// Canonical sort/compare key of an entry: (group, order, node,
/// published_at, expires_at) — unique per live record (node+group is the
/// dedup identity), so sorting both stores' contents by it makes them
/// directly comparable even though LinearStoreRef keeps insertion order.
template <typename Traits, typename Entry>
auto canonical_key(const Traits& traits, const Entry& e) {
  return std::make_tuple(traits.group(e), traits.order(e), traits.node(e),
                         traits.published_at(e), traits.expires_at(e));
}

template <typename Entry, typename Traits>
void expect_same_contents(const Traits& traits,
                          const IndexedStore<Entry, Traits>& indexed,
                          const LinearStoreRef<Entry, Traits>& linear) {
  ASSERT_EQ(indexed.size(), linear.size());
  ASSERT_EQ(indexed.empty(), linear.empty());
  std::vector<Entry> a;
  std::vector<Entry> b;
  indexed.for_each([&](const Entry& e) { a.push_back(e); });
  linear.for_each([&](const Entry& e) { b.push_back(e); });
  const auto by_key = [&](const Entry& x, const Entry& y) {
    return canonical_key(traits, x) < canonical_key(traits, y);
  };
  // The indexed store must already emit in (group, order, node) order —
  // that contiguity is what the lookup path's range collection relies on.
  ASSERT_TRUE(std::is_sorted(a.begin(), a.end(), by_key));
  std::sort(b.begin(), b.end(), by_key);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(canonical_key(traits, a[i]), canonical_key(traits, b[i]))
        << "entry " << i;
}

template <typename Entry, typename Traits>
void expect_same_group(const Traits& traits, const typename Traits::GroupKey& g,
                       const IndexedStore<Entry, Traits>& indexed,
                       const LinearStoreRef<Entry, Traits>& linear) {
  std::vector<Entry> a;
  std::vector<Entry> b;
  indexed.for_each_in_group(g, [&](const Entry& e) { a.push_back(e); });
  linear.for_each_in_group(g, [&](const Entry& e) { b.push_back(e); });
  const auto by_key = [&](const Entry& x, const Entry& y) {
    return canonical_key(traits, x) < canonical_key(traits, y);
  };
  ASSERT_TRUE(std::is_sorted(a.begin(), a.end(), by_key));
  std::sort(b.begin(), b.end(), by_key);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(canonical_key(traits, a[i]), canonical_key(traits, b[i]));
}

/// Drives both stores through an identical randomized sequence of
/// upsert / erase_node / expire_before / extract_if / extract_all and
/// checks observable equivalence plus the indexed structural invariants.
/// `make_entry(node, group_pick, now, rng)` builds one backend entry.
template <typename Entry, typename Traits, typename MakeEntry>
void run_twin_sequence(Traits traits, MakeEntry make_entry,
                       std::uint64_t seed, int steps) {
  IndexedStore<Entry, Traits> indexed(traits);
  LinearStoreRef<Entry, Traits> linear(traits);
  util::Rng rng(seed);
  sim::Time now = 0.0;
  constexpr overlay::NodeId kNodePool = 8;
  constexpr std::uint64_t kGroupPool = 5;

  for (int step = 0; step < steps; ++step) {
    now += rng.next_double(0.0, 4.0);
    const double roll = rng.next_double();
    if (roll < 0.55) {
      const auto node = static_cast<overlay::NodeId>(
          rng.next_u64(kNodePool));
      const Entry entry = make_entry(node, rng.next_u64(kGroupPool), now, rng);
      const auto [outcome_a, stored_a] = indexed.upsert(entry);
      const auto [outcome_b, stored_b] = linear.upsert(entry);
      ASSERT_EQ(outcome_a, outcome_b) << "step " << step;
      ASSERT_EQ(canonical_key(traits, *stored_a),
                canonical_key(traits, *stored_b));
    } else if (roll < 0.70) {
      ASSERT_EQ(indexed.expire_before(now), linear.expire_before(now))
          << "step " << step;
    } else if (roll < 0.80) {
      const auto node = static_cast<overlay::NodeId>(
          rng.next_u64(kNodePool));
      ASSERT_EQ(indexed.erase_node(node), linear.erase_node(node))
          << "step " << step;
    } else if (roll < 0.85) {
      // Extract one node's records (the rehome path uses a predicate).
      const auto victim = static_cast<overlay::NodeId>(
          rng.next_u64(kNodePool));
      const auto pred = [&](const Entry& e) {
        return traits.node(e) == victim;
      };
      auto a = indexed.extract_if(pred);
      auto b = linear.extract_if(pred);
      const auto by_key = [&](const Entry& x, const Entry& y) {
        return canonical_key(traits, x) < canonical_key(traits, y);
      };
      std::sort(a.begin(), a.end(), by_key);
      std::sort(b.begin(), b.end(), by_key);
      ASSERT_EQ(a.size(), b.size()) << "step " << step;
      for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(canonical_key(traits, a[i]), canonical_key(traits, b[i]));
    } else if (roll < 0.88) {
      auto a = indexed.extract_all();
      auto b = linear.extract_all();
      ASSERT_EQ(a.size(), b.size()) << "step " << step;
      ASSERT_TRUE(indexed.empty());
      ASSERT_TRUE(linear.empty());
    } else {
      expect_same_contents(traits, indexed, linear);
      for (std::uint64_t g = 0; g < kGroupPool; ++g) {
        const Entry probe = make_entry(0, g, now, rng);
        expect_same_group(traits, traits.group(probe), indexed, linear);
      }
    }
    ASSERT_TRUE(indexed.check_index_invariants()) << "step " << step;
  }
  expect_same_contents(traits, indexed, linear);
}

StoredEntry make_map_entry(overlay::NodeId node, std::uint64_t group_pick,
                           sim::Time now, util::Rng& rng) {
  StoredEntry s;
  s.cell_key = 100 + group_pick;
  s.level = static_cast<int>(group_pick % 3) + 1;
  s.entry.node = node;
  s.entry.host = static_cast<net::HostId>(node);
  s.entry.landmark_number = util::BigUint(rng.next_u64(1u << 16));
  // Sometimes older than an already-stored record (rehome replaying a
  // pre-republish copy) so the stale-drop path is exercised.
  s.entry.published_at = now - rng.next_double(0.0, 6.0);
  s.entry.expires_at = s.entry.published_at + rng.next_double(5.0, 40.0);
  return s;
}

ChordMapEntry make_chord_entry(overlay::NodeId node, std::uint64_t,
                               sim::Time now, util::Rng& rng) {
  ChordMapEntry e;
  e.node = node;
  e.host = static_cast<net::HostId>(node);
  // The ring key is the *order* key, not part of the dedup identity: a
  // republish with a re-measured vector moves the record within the map,
  // exercising the indexed store's reposition path.
  e.key = static_cast<overlay::ChordId>(rng.next_u64(1u << 20));
  e.published_at = now - rng.next_double(0.0, 6.0);
  e.expires_at = e.published_at + rng.next_double(5.0, 40.0);
  return e;
}

PastryMapEntry make_pastry_entry(overlay::NodeId node,
                                 std::uint64_t group_pick, sim::Time now,
                                 util::Rng& rng) {
  PastryMapEntry e;
  e.node = node;
  e.host = static_cast<net::HostId>(node);
  e.prefix_digits = static_cast<int>(group_pick % 3) + 1;
  e.region_lo = static_cast<overlay::PastryId>(1000 * (group_pick + 1));
  e.position = e.region_lo + static_cast<overlay::PastryId>(
      rng.next_u64(1000));
  e.published_at = now - rng.next_double(0.0, 6.0);
  e.expires_at = e.published_at + rng.next_double(5.0, 40.0);
  return e;
}

class StoreTwinSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreTwinSeeds, EcanTraitsMatchLinearReference) {
  run_twin_sequence<StoredEntry>(MapStoreTraits{16}, make_map_entry,
                                 GetParam(), 1200);
}

TEST_P(StoreTwinSeeds, ChordTraitsMatchLinearReference) {
  run_twin_sequence<ChordMapEntry>(ChordMapStoreTraits{}, make_chord_entry,
                                   GetParam(), 1200);
}

TEST_P(StoreTwinSeeds, PastryTraitsMatchLinearReference) {
  run_twin_sequence<PastryMapEntry>(PastryMapStoreTraits{},
                                    make_pastry_entry, GetParam(), 1200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreTwinSeeds,
                         ::testing::Values(11ull, 42ull, 977ull));

TEST(IndexedStore, MassExpiryMatchesLinearSweep) {
  // A single sweep dropping hundreds of entries must agree with the
  // linear rescan and leave the indexes consistent (this is the batched
  // unlink + one-pass compaction path).
  const MapStoreTraits traits{16};
  IndexedStore<StoredEntry, MapStoreTraits> indexed(traits);
  LinearStoreRef<StoredEntry, MapStoreTraits> linear(traits);
  util::Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    const auto e = make_map_entry(
        static_cast<overlay::NodeId>(rng.next_u64(40)), rng.next_u64(6),
        rng.next_double(0.0, 10.0), rng);
    ASSERT_EQ(indexed.upsert(e).first, linear.upsert(e).first);
  }
  for (const sim::Time t : {12.0, 25.0, 47.0, 60.0}) {
    ASSERT_EQ(indexed.expire_before(t), linear.expire_before(t)) << t;
    ASSERT_TRUE(indexed.check_index_invariants());
    expect_same_contents(traits, indexed, linear);
  }
  EXPECT_TRUE(indexed.empty());
}

TEST(IndexedStore, RefreshChurnKeepsHeapBounded) {
  // Refreshing the same records over and over must not grow the expiry
  // heap without bound (stale items are compacted once they dominate).
  const MapStoreTraits traits{16};
  IndexedStore<StoredEntry, MapStoreTraits> store(traits);
  util::Rng rng(13);
  for (int round = 0; round < 400; ++round) {
    for (overlay::NodeId n = 0; n < 4; ++n) {
      StoredEntry s = make_map_entry(n, 0, 1000.0 + round, rng);
      s.entry.published_at = 1000.0 + round;  // strictly fresher
      s.entry.expires_at = s.entry.published_at + 30.0;
      store.upsert(std::move(s));
    }
    store.expire_before(1000.0 + round);
    ASSERT_TRUE(store.check_index_invariants());
  }
  EXPECT_EQ(store.size(), 4u);
}

// ---------------------------------------------------------------------
// Full service twins: MapService vs LegacyLinearMapService
// ---------------------------------------------------------------------

struct TwinFixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<MapService> indexed;
  std::unique_ptr<LegacyLinearMapService> reference;
  std::vector<overlay::NodeId> nodes;
  std::vector<proximity::LandmarkVector> vectors;
  std::vector<util::BigUint> numbers;

  explicit TwinFixture(std::uint64_t seed, std::size_t overlay_nodes = 160) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 8, rng, {}));
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (std::size_t i = 0; i < overlay_nodes; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(ecan->join_random(host, rng));
    }
    MapConfig config;
    indexed = std::make_unique<MapService>(*ecan, *landmarks, config);
    MapConfig reference_config = config;
    reference_config.use_reference_router = true;
    reference = std::make_unique<LegacyLinearMapService>(*ecan, *landmarks,
                                                         reference_config);
    vectors.resize(ecan->slot_count());
    numbers.resize(ecan->slot_count());
    for (const auto id : nodes) {
      vectors[id] = landmarks->measure(*oracle, ecan->node(id).host);
      numbers[id] = landmarks->landmark_number(vectors[id]);
    }
  }

  void publish_all(sim::Time now) {
    for (const auto id : nodes) {
      indexed->publish(id, vectors[id], numbers[id], now);
      reference->publish(id, vectors[id], now);
    }
  }
};

void expect_entries_equal(const std::vector<MapEntry>& a,
                          const std::vector<MapEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].node, b[i].node) << "rank " << i;
    ASSERT_EQ(a[i].host, b[i].host);
    ASSERT_EQ(a[i].vector, b[i].vector);
    ASSERT_EQ(a[i].published_at, b[i].published_at);
    ASSERT_EQ(a[i].expires_at, b[i].expires_at);
  }
}

TEST(MapServiceTwins, LookupsAndStatsIdentical) {
  TwinFixture f(101);
  f.publish_all(0.0);
  ASSERT_EQ(f.indexed->total_entries(), f.reference->total_entries());
  ASSERT_EQ(f.indexed->hosting_owner_count(),
            f.reference->hosting_owner_count());
  ASSERT_EQ(f.indexed->max_entries_per_node(),
            f.reference->max_entries_per_node());

  util::Rng rng(202);
  std::vector<MapEntry> buffer;
  std::vector<std::uint32_t> cell(2);
  for (int q = 0; q < 600; ++q) {
    const auto querier = f.nodes[rng.next_u64(f.nodes.size())];
    const int levels = f.ecan->node_level(querier);
    if (levels < 1) continue;
    const int level =
        1 + static_cast<int>(rng.next_u64(static_cast<std::uint64_t>(levels)));
    f.ecan->cell_of_node_into(querier, level, cell);

    LookupResult meta_fast;
    LookupResult meta_ref;
    const std::size_t count = f.indexed->lookup_entries_into(
        querier, f.vectors[querier], f.numbers[querier], level, cell, 100.0,
        buffer, &meta_fast);
    const auto reference_entries = f.reference->lookup_entries(
        querier, f.vectors[querier], level, cell, 100.0, &meta_ref);

    std::vector<MapEntry> fast_entries(buffer.begin(),
                                       buffer.begin() + count);
    expect_entries_equal(fast_entries, reference_entries);
    ASSERT_EQ(meta_fast.owner, meta_ref.owner) << "query " << q;
    ASSERT_EQ(meta_fast.route_hops, meta_ref.route_hops);
    ASSERT_EQ(meta_fast.pieces_visited, meta_ref.pieces_visited);
  }

  // Every counter the two services kept must agree (hops, expiry...).
  EXPECT_EQ(f.indexed->stats().publishes, f.reference->stats().publishes);
  EXPECT_EQ(f.indexed->stats().lookups, f.reference->stats().lookups);
  EXPECT_EQ(f.indexed->stats().route_hops, f.reference->stats().route_hops);
  EXPECT_EQ(f.indexed->stats().expired_entries,
            f.reference->stats().expired_entries);
  EXPECT_EQ(f.indexed->stats().failed_routes,
            f.reference->stats().failed_routes);
}

TEST(MapServiceTwins, ExpiryAndChurnStayIdentical) {
  TwinFixture f(303);
  f.publish_all(0.0);

  // Republish half the nodes later: refresh path on both services.
  util::Rng rng(404);
  for (const auto id : f.nodes)
    if (rng.next_bool(0.5)) {
      f.indexed->publish(id, f.vectors[id], f.numbers[id], 30'000.0);
      f.reference->publish(id, f.vectors[id], 30'000.0);
    }
  ASSERT_EQ(f.indexed->total_entries(), f.reference->total_entries());

  // First-wave records expire, refreshed ones survive.
  ASSERT_EQ(f.indexed->expire_before(70'000.0),
            f.reference->expire_before(70'000.0));
  ASSERT_EQ(f.indexed->total_entries(), f.reference->total_entries());
  EXPECT_TRUE(f.indexed->check_placement_invariant());
  EXPECT_TRUE(f.reference->check_placement_invariant());

  // Lazy deletion and proactive removal agree store-for-store.
  for (int i = 0; i < 20; ++i) {
    const auto victim = f.nodes[rng.next_u64(f.nodes.size())];
    f.indexed->remove_everywhere(victim);
    f.reference->remove_everywhere(victim);
  }
  ASSERT_EQ(f.indexed->total_entries(), f.reference->total_entries());
  for (const auto id : f.nodes)
    ASSERT_EQ(f.indexed->store_size(id), f.reference->store_size(id));
}

}  // namespace
}  // namespace topo::softstate
