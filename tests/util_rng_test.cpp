#include "util/rng.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace topo::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextU64RespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_u64(bound), bound);
  }
}

TEST(Rng, NextU64BoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_u64(1), 0u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // law of large numbers
}

TEST(Rng, NextDoubleRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.next_bool(0.3)) ++heads;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child diverges from parent's subsequent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // probability 1/100! of flaking
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(31);
  for (std::size_t n : {1UL, 5UL, 100UL, 10000UL}) {
    for (std::size_t k : {std::size_t{0}, std::size_t{1}, n / 2, n}) {
      const auto sample = rng.sample_indices(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<std::size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (const auto idx : sample) EXPECT_LT(idx, n);
    }
  }
}

TEST(Rng, SampleIndicesCoversSparseAndDensePaths) {
  Rng rng(37);
  // Dense path: k close to n.
  const auto dense = rng.sample_indices(10, 9);
  EXPECT_EQ(std::set<std::size_t>(dense.begin(), dense.end()).size(), 9u);
  // Sparse path: k << n.
  const auto sparse = rng.sample_indices(100000, 5);
  EXPECT_EQ(std::set<std::size_t>(sparse.begin(), sparse.end()).size(), 5u);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
}

}  // namespace
}  // namespace topo::util
