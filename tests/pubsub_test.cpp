#include "pubsub/pubsub.hpp"

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::pubsub {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<softstate::MapService> maps;
  std::unique_ptr<PubSubService> pubsub;
  std::vector<overlay::NodeId> nodes;
  std::unordered_map<overlay::NodeId, proximity::LandmarkVector> vectors;
  std::vector<std::pair<overlay::NodeId, Notification>> received;

  explicit Fixture(std::uint64_t seed, std::size_t overlay_nodes = 64) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, net::LatencyModel::kManual, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 6, rng, {}));
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (std::size_t i = 0; i < overlay_nodes; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(ecan->join_random(host, rng));
    }
    maps = std::make_unique<softstate::MapService>(*ecan, *landmarks,
                                                   softstate::MapConfig{});
    pubsub = std::make_unique<PubSubService>(*ecan, *maps);
    pubsub->set_handler(
        [this](overlay::NodeId subscriber, const Notification& n) {
          received.emplace_back(subscriber, n);
        });
    for (const auto id : nodes)
      vectors[id] = landmarks->measure(*oracle, ecan->node(id).host);
  }

  Subscription base_subscription(overlay::NodeId subscriber, int level,
                                 std::uint64_t cell_key) {
    Subscription s;
    s.subscriber = subscriber;
    s.vector = vectors[subscriber];
    s.level = level;
    s.cell_key = cell_key;
    return s;
  }

  std::uint64_t cell_key_of(overlay::NodeId node, int level) {
    return ecan->pack_cell(level, ecan->cell_of_node(node, level));
  }
};

TEST(PubSub, CloserCandidateTriggers) {
  Fixture f(1);
  const auto subscriber = f.nodes[0];
  const auto publisher = f.nodes[1];
  if (f.ecan->node_level(publisher) < 1) GTEST_SKIP();
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(publisher, 1));
  s.current_best_distance = 1e9;  // anything is closer
  f.pubsub->subscribe(std::move(s));

  f.maps->publish(publisher, f.vectors[publisher], 0.0);
  ASSERT_GE(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].first, subscriber);
  EXPECT_EQ(f.received[0].second.reason,
            Notification::Reason::kCloserCandidate);
  EXPECT_EQ(f.received[0].second.entry.node, publisher);
  EXPECT_GT(f.pubsub->stats().notifications, 0u);
}

TEST(PubSub, FartherCandidateDoesNotTrigger) {
  Fixture f(2);
  const auto subscriber = f.nodes[0];
  const auto publisher = f.nodes[1];
  if (f.ecan->node_level(publisher) < 1) GTEST_SKIP();
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(publisher, 1));
  s.current_best_distance = 0.0;  // nothing can beat it
  f.pubsub->subscribe(std::move(s));
  f.maps->publish(publisher, f.vectors[publisher], 0.0);
  EXPECT_TRUE(f.received.empty());
}

TEST(PubSub, WrongCellDoesNotTrigger) {
  Fixture f(3);
  const auto subscriber = f.nodes[0];
  const auto publisher = f.nodes[1];
  if (f.ecan->node_level(publisher) < 1) GTEST_SKIP();
  Subscription s = f.base_subscription(subscriber, 1, ~0ULL);  // bogus cell
  s.current_best_distance = 1e9;
  f.pubsub->subscribe(std::move(s));
  f.maps->publish(publisher, f.vectors[publisher], 0.0);
  EXPECT_TRUE(f.received.empty());
}

TEST(PubSub, OwnPublishDoesNotNotifySelf) {
  Fixture f(4);
  const auto subscriber = f.nodes[0];
  if (f.ecan->node_level(subscriber) < 1) GTEST_SKIP();
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(subscriber, 1));
  s.current_best_distance = 1e9;
  f.pubsub->subscribe(std::move(s));
  f.maps->publish(subscriber, f.vectors[subscriber], 0.0);
  EXPECT_TRUE(f.received.empty());
}

TEST(PubSub, LoadThresholdTriggers) {
  Fixture f(5);
  const auto subscriber = f.nodes[0];
  const auto watched = f.nodes[1];
  if (f.ecan->node_level(watched) < 1) GTEST_SKIP();
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(watched, 1));
  s.watched = watched;
  s.load_threshold = 0.8;
  s.current_best_distance = 0.0;  // suppress closer-candidate path
  f.pubsub->subscribe(std::move(s));

  // Below threshold: no notification.
  f.maps->publish(watched, f.vectors[watched], 0.0, /*load=*/0.5,
                  /*capacity=*/1.0);
  EXPECT_TRUE(f.received.empty());
  // Above: notified with kLoadExceeded.
  f.maps->publish(watched, f.vectors[watched], 1.0, /*load=*/0.9,
                  /*capacity=*/1.0);
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second.reason,
            Notification::Reason::kLoadExceeded);
}

TEST(PubSub, NewNodeWatchFiresOncePerNode) {
  Fixture f(6);
  const auto subscriber = f.nodes[0];
  const auto publisher = f.nodes[1];
  if (f.ecan->node_level(publisher) < 1) GTEST_SKIP();
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(publisher, 1));
  s.notify_on_new_node = true;
  s.current_best_distance = 0.0;  // suppress closer-candidate path
  f.pubsub->subscribe(std::move(s));

  f.maps->publish(publisher, f.vectors[publisher], 0.0);
  const std::size_t after_first = f.received.size();
  EXPECT_GE(after_first, 1u);
  // Republish: already seen, no second kNewNode.
  f.maps->publish(publisher, f.vectors[publisher], 1.0);
  EXPECT_EQ(f.received.size(), after_first);
}

// Regression: the new-node watch never forgot departed nodes, so a node
// that left and rejoined the zone silently failed to retrigger kNewNode.
TEST(PubSub, DepartedNodeRetriggersNewNodeWatchOnRejoin) {
  Fixture f(16);
  const auto subscriber = f.nodes[0];
  const auto publisher = f.nodes[1];
  if (f.ecan->node_level(publisher) < 1) GTEST_SKIP();
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(publisher, 1));
  s.notify_on_new_node = true;
  s.current_best_distance = 0.0;  // suppress closer-candidate path
  f.pubsub->subscribe(std::move(s));

  f.maps->publish(publisher, f.vectors[publisher], 0.0);
  ASSERT_GE(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second.reason, Notification::Reason::kNewNode);
  f.received.clear();

  // The publisher departs (the departure protocol announces it) and later
  // rejoins the same zone: its first publish must count as new again.
  f.pubsub->notify_departure(publisher);
  f.received.clear();  // ignore any watcher notifications
  f.maps->publish(publisher, f.vectors[publisher], 1'000.0);
  ASSERT_GE(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second.reason, Notification::Reason::kNewNode);
  EXPECT_EQ(f.received[0].second.entry.node, publisher);
}

TEST(PubSub, DepartureNotifiesWatchers) {
  Fixture f(7);
  const auto subscriber = f.nodes[0];
  const auto watched = f.nodes[1];
  Subscription s = f.base_subscription(subscriber, 1, 0);
  s.watched = watched;
  f.pubsub->subscribe(std::move(s));
  f.pubsub->notify_departure(watched);
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second.reason,
            Notification::Reason::kWatchedDeparted);
  // Non-watched departure is silent.
  f.received.clear();
  f.pubsub->notify_departure(f.nodes[2]);
  EXPECT_TRUE(f.received.empty());
}

TEST(PubSub, UnsubscribeStopsNotifications) {
  Fixture f(8);
  const auto subscriber = f.nodes[0];
  const auto publisher = f.nodes[1];
  if (f.ecan->node_level(publisher) < 1) GTEST_SKIP();
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(publisher, 1));
  s.current_best_distance = 1e9;
  const SubscriptionId id = f.pubsub->subscribe(std::move(s));
  f.pubsub->unsubscribe(id);
  f.maps->publish(publisher, f.vectors[publisher], 0.0);
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.pubsub->active_subscriptions(), 0u);
}

TEST(PubSub, UpdateWatchChangesThresholds) {
  Fixture f(9);
  const auto subscriber = f.nodes[0];
  const auto publisher = f.nodes[1];
  if (f.ecan->node_level(publisher) < 1) GTEST_SKIP();
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(publisher, 1));
  s.current_best_distance = 1e9;
  const SubscriptionId id = f.pubsub->subscribe(std::move(s));
  // Tighten: now nothing triggers.
  f.pubsub->update_watch(id, publisher, 0.0);
  f.maps->publish(publisher, f.vectors[publisher], 0.0);
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.pubsub->find(id)->watched, publisher);
}

TEST(PubSub, HandlerMayResubscribeDuringDelivery) {
  // Regression: mutating the subscription table from the handler must not
  // invalidate iteration.
  Fixture f(10);
  const auto subscriber = f.nodes[0];
  const auto publisher = f.nodes[1];
  if (f.ecan->node_level(publisher) < 1) GTEST_SKIP();
  f.pubsub->set_handler(
      [&](overlay::NodeId, const Notification& n) {
        Subscription extra = f.base_subscription(f.nodes[2], 1, 12345);
        f.pubsub->subscribe(std::move(extra));
        f.pubsub->update_watch(n.subscription, n.entry.node, 0.0);
      });
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(publisher, 1));
  s.current_best_distance = 1e9;
  f.pubsub->subscribe(std::move(s));
  f.maps->publish(publisher, f.vectors[publisher], 0.0);
  EXPECT_GE(f.pubsub->active_subscriptions(), 2u);
}

TEST(PubSub, NotificationRouteHopsAccounted) {
  Fixture f(11, 128);
  const auto subscriber = f.nodes[0];
  const auto publisher = f.nodes[1];
  if (f.ecan->node_level(publisher) < 1) GTEST_SKIP();
  Subscription s =
      f.base_subscription(subscriber, 1, f.cell_key_of(publisher, 1));
  s.current_best_distance = 1e9;
  f.pubsub->subscribe(std::move(s));
  f.maps->publish(publisher, f.vectors[publisher], 0.0);
  if (!f.received.empty()) {
    EXPECT_GT(f.pubsub->stats().predicate_evaluations, 0u);
  }
}

TEST(PubSub, IndexedMatcherEquivalentToReferenceMatcher) {
  // The per-map index and the seed-era full-table scan must deliver the
  // same notifications in the same order, with identical predicate and
  // routing accounting. Drive both through an identical broad mix of
  // subscriptions and publishes and compare the full event streams.
  auto run = [](bool reference) {
    Fixture f(31);
    f.pubsub->set_reference_matcher(reference);
    // Broad subscriptions: every node watches its own level-1 cell, some
    // with new-node watches, some with tight load thresholds.
    std::size_t count = 0;
    for (const auto id : f.nodes) {
      if (f.ecan->node_level(id) < 1) continue;
      Subscription s =
          f.base_subscription(id, 1, f.cell_key_of(id, 1));
      s.current_best_distance = 1e9;
      s.notify_on_new_node = (count % 3) == 0;
      if ((count % 4) == 0) {
        s.load_threshold = 0.5;
        s.watched = f.nodes[(count + 1) % f.nodes.size()];
      }
      ++count;
      f.pubsub->subscribe(std::move(s));
    }
    // Publish everyone twice (repeat publishes exercise the seen_ sets),
    // with load crossing thresholds on the second round.
    for (const auto id : f.nodes)
      f.maps->publish(id, f.vectors[id], 0.0);
    for (const auto id : f.nodes)
      f.maps->publish(id, f.vectors[id], 1.0, /*load=*/0.9);
    // Unsubscribe a slice, then publish again: index removal must track.
    std::size_t removed = 0;
    for (SubscriptionId sub = 1; sub <= count && removed < 8; sub += 3) {
      f.pubsub->unsubscribe(sub);
      ++removed;
    }
    for (const auto id : f.nodes)
      f.maps->publish(id, f.vectors[id], 2.0, /*load=*/0.9);
    return std::make_tuple(f.received, f.pubsub->stats());
  };

  const auto [fast_events, fast_stats] = run(false);
  const auto [ref_events, ref_stats] = run(true);

  ASSERT_EQ(fast_events.size(), ref_events.size());
  for (std::size_t i = 0; i < fast_events.size(); ++i) {
    EXPECT_EQ(fast_events[i].first, ref_events[i].first) << i;
    EXPECT_EQ(fast_events[i].second.subscription,
              ref_events[i].second.subscription)
        << i;
    EXPECT_EQ(fast_events[i].second.reason, ref_events[i].second.reason)
        << i;
    EXPECT_EQ(fast_events[i].second.entry.node,
              ref_events[i].second.entry.node)
        << i;
  }
  EXPECT_EQ(fast_stats.notifications, ref_stats.notifications);
  EXPECT_EQ(fast_stats.route_hops, ref_stats.route_hops);
  EXPECT_EQ(fast_stats.predicate_evaluations,
            ref_stats.predicate_evaluations);
  EXPECT_EQ(fast_stats.dropped_notifications,
            ref_stats.dropped_notifications);
  // The index only pays for the published map's own subscribers; the
  // reference scan evaluates... also only those (the predicate gate), but
  // walks the whole table to find them. Evaluation counts must agree
  // exactly either way.
}

}  // namespace
}  // namespace topo::pubsub
