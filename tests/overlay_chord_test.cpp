#include "overlay/chord.hpp"

#include <algorithm>
#include <set>

#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace topo::overlay {
namespace {

class FirstFinger final : public FingerSelector {
 public:
  NodeId select(NodeId, int, std::span<const NodeId> candidates) override {
    return candidates.front();
  }
};

TEST(Chord, JoinAssignsIdsAndRing) {
  ChordNetwork chord(8);
  const NodeId a = chord.join(0, 10);
  const NodeId b = chord.join(1, 200);
  EXPECT_EQ(chord.size(), 2u);
  EXPECT_EQ(chord.node(a).id, 10u);
  EXPECT_EQ(chord.node(b).id, 200u);
  EXPECT_TRUE(chord.check_invariants());
}

TEST(Chord, SuccessorOfWrapsAroundRing) {
  ChordNetwork chord(8);
  const NodeId a = chord.join(0, 10);
  const NodeId b = chord.join(1, 200);
  EXPECT_EQ(chord.successor_of(5), a);
  EXPECT_EQ(chord.successor_of(10), a);   // inclusive
  EXPECT_EQ(chord.successor_of(11), b);
  EXPECT_EQ(chord.successor_of(201), a);  // wrap
  EXPECT_EQ(chord.successor_of(255), a);
}

TEST(Chord, SuccessorNodeIsNextOnRing) {
  ChordNetwork chord(8);
  const NodeId a = chord.join(0, 10);
  const NodeId b = chord.join(1, 100);
  const NodeId c = chord.join(2, 200);
  EXPECT_EQ(chord.successor_node(a), b);
  EXPECT_EQ(chord.successor_node(b), c);
  EXPECT_EQ(chord.successor_node(c), a);
}

TEST(Chord, SingleNodeOwnsEverything) {
  ChordNetwork chord(8);
  const NodeId a = chord.join(0, 42);
  EXPECT_EQ(chord.successor_of(0), a);
  EXPECT_EQ(chord.successor_of(255), a);
  EXPECT_EQ(chord.successor_node(a), a);
  const RouteResult route = chord.route(a, 7);
  EXPECT_TRUE(route.success);
  EXPECT_EQ(route.hops(), 0u);
}

TEST(Chord, ClockwiseDistanceAndArc) {
  ChordNetwork chord(8);
  EXPECT_EQ(chord.clockwise_distance(10, 20), 10u);
  EXPECT_EQ(chord.clockwise_distance(250, 4), 10u);
  EXPECT_TRUE(chord.in_arc(3, 250, 10));
  EXPECT_FALSE(chord.in_arc(20, 250, 10));
  EXPECT_FALSE(chord.in_arc(10, 250, 10));  // hi exclusive
  EXPECT_TRUE(chord.in_arc(250, 250, 10));  // lo inclusive
}

TEST(Chord, NodesInIntervalRespectsWrapAndLimit) {
  ChordNetwork chord(8);
  chord.join(0, 10);
  const NodeId b = chord.join(1, 100);
  const NodeId c = chord.join(2, 200);
  const auto wrap = chord.nodes_in_interval(150, 50);
  ASSERT_EQ(wrap.size(), 2u);  // 200 and 10
  EXPECT_EQ(wrap[0], c);
  const auto limited = chord.nodes_in_interval(0, 255, 1);
  ASSERT_EQ(limited.size(), 1u);
  const auto mid = chord.nodes_in_interval(50, 150);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0], b);
  EXPECT_TRUE(chord.nodes_in_interval(20, 90).empty());
}

TEST(Chord, FingerIntervalsTileHalfRing) {
  ChordNetwork chord(8);
  const NodeId a = chord.join(0, 0);
  // Finger intervals [2^i, 2^(i+1)) tile [1, 256) minus [1,2) start at 1.
  ChordId expected_lo = 1;
  for (int i = 0; i < 8; ++i) {
    const auto [lo, hi] = chord.finger_interval(a, i);
    EXPECT_EQ(lo, expected_lo);
    EXPECT_EQ(chord.clockwise_distance(lo, hi), ChordId{1} << i);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 0u);  // wrapped exactly once around
}

TEST(Chord, BuildFingersLandInIntervals) {
  ChordNetwork chord(10);
  util::Rng rng(3);
  for (int i = 0; i < 64; ++i)
    chord.join_random(static_cast<net::HostId>(i), rng);
  FirstFinger selector;
  chord.build_all_fingers(selector);
  EXPECT_TRUE(chord.check_invariants());
}

TEST(Chord, RoutingReachesResponsibleNode) {
  ChordNetwork chord(16);
  util::Rng rng(5);
  for (int i = 0; i < 128; ++i)
    chord.join_random(static_cast<net::HostId>(i), rng);
  FirstFinger selector;
  chord.build_all_fingers(selector);
  const auto live = chord.live_nodes();
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const ChordId key = rng.next_u64(chord.ring_size());
    const RouteResult route = chord.route(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), chord.successor_of(key));
  }
}

TEST(Chord, RoutingIsLogarithmic) {
  ChordNetwork chord(20);
  util::Rng rng(7);
  for (int i = 0; i < 1024; ++i)
    chord.join_random(static_cast<net::HostId>(i), rng);
  FirstFinger selector;
  chord.build_all_fingers(selector);
  const auto live = chord.live_nodes();
  util::Samples hops;
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const RouteResult route =
        chord.route(from, rng.next_u64(chord.ring_size()));
    ASSERT_TRUE(route.success);
    hops.add(static_cast<double>(route.hops()));
  }
  // log2(1024)/2 = 5 expected; allow generous headroom.
  EXPECT_LT(hops.mean(), 8.0);
}

TEST(Chord, RoutingWithoutFingersWalksSuccessors) {
  ChordNetwork chord(10);
  util::Rng rng(9);
  for (int i = 0; i < 32; ++i)
    chord.join_random(static_cast<net::HostId>(i), rng);
  // No fingers built at all: successor walking still delivers.
  const auto live = chord.live_nodes();
  const RouteResult route =
      chord.route(live[0], rng.next_u64(chord.ring_size()));
  EXPECT_TRUE(route.success);
}

TEST(Chord, LeaveTransfersResponsibility) {
  ChordNetwork chord(8);
  const NodeId a = chord.join(0, 10);
  const NodeId b = chord.join(1, 100);
  chord.join(2, 200);
  EXPECT_EQ(chord.successor_of(50), b);
  chord.leave(b);
  EXPECT_FALSE(chord.alive(b));
  EXPECT_EQ(chord.successor_of(50), chord.successor_of(150));
  EXPECT_TRUE(chord.check_invariants());
  (void)a;
}

TEST(Chord, DeadFingersSkippedAndCounted) {
  ChordNetwork chord(16);
  util::Rng rng(11);
  for (int i = 0; i < 128; ++i)
    chord.join_random(static_cast<net::HostId>(i), rng);
  FirstFinger selector;
  chord.build_all_fingers(selector);
  auto live = chord.live_nodes();
  rng.shuffle(live);
  for (int i = 0; i < 32; ++i) chord.leave(live[static_cast<std::size_t>(i)]);
  const auto survivors = chord.live_nodes();
  int delivered = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const NodeId from = survivors[rng.next_u64(survivors.size())];
    if (chord.route(from, rng.next_u64(chord.ring_size())).success)
      ++delivered;
  }
  EXPECT_EQ(delivered, 100);
  EXPECT_GT(chord.broken_finger_encounters(), 0u);
}

TEST(Chord, RefreshFingerReplacesDeadEntry) {
  ChordNetwork chord(12);
  util::Rng rng(13);
  for (int i = 0; i < 64; ++i)
    chord.join_random(static_cast<net::HostId>(i), rng);
  FirstFinger selector;
  chord.build_all_fingers(selector);
  // Find a node with a live finger, kill the finger, refresh.
  for (const NodeId n : chord.live_nodes()) {
    for (int i = 11; i >= 0; --i) {
      const NodeId finger = chord.node(n).fingers[static_cast<std::size_t>(i)];
      if (finger == kInvalidNode || finger == n) continue;
      chord.leave(finger);
      chord.refresh_finger(n, i, selector);
      const NodeId fresh = chord.node(n).fingers[static_cast<std::size_t>(i)];
      EXPECT_NE(fresh, finger);
      return;
    }
  }
  FAIL() << "no live finger found";
}

TEST(Chord, ChurnKeepsInvariantsWithRebuilds) {
  ChordNetwork chord(16);
  util::Rng rng(17);
  FirstFinger selector;
  std::vector<NodeId> live;
  net::HostId next_host = 0;
  for (int step = 0; step < 200; ++step) {
    if (live.size() < 4 || rng.next_bool(0.6)) {
      live.push_back(chord.join_random(next_host++, rng));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      chord.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 50 == 49) {
      chord.build_all_fingers(selector);
      ASSERT_TRUE(chord.check_invariants()) << "step " << step;
    }
  }
}

TEST(Chord, UniqueRandomIds) {
  ChordNetwork chord(8);  // tiny ring: collisions certain to be retried
  util::Rng rng(19);
  std::set<ChordId> ids;
  for (int i = 0; i < 100; ++i) {
    const NodeId n = chord.join_random(static_cast<net::HostId>(i), rng);
    EXPECT_TRUE(ids.insert(chord.node(n).id).second);
  }
}

}  // namespace
}  // namespace topo::overlay
