// The unified fault plane: deterministic per seed, inactive by default,
// and faithful to its fault classes — loss is a per-message draw, a
// crashed host neither sends nor receives, a partitioned stub is cut off
// from everything but itself, and path-level gating catches crashed or
// partitioned forwarding hops.
#include <vector>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "sim/fault_plane.hpp"
#include "util/retry_policy.hpp"

namespace topo {
namespace {

net::Topology make_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology t = net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(t, net::LatencyModel::kManual, rng);
  return t;
}

/// Two distinct hosts in the same stub domain.
std::pair<net::HostId, net::HostId> same_stub_pair(const net::Topology& t) {
  for (net::HostId a = 0; a < t.host_count(); ++a)
    for (net::HostId b = a + 1; b < t.host_count(); ++b)
      if (t.host(a).stub_domain == t.host(b).stub_domain &&
          t.host(a).stub_domain >= 0)
        return {a, b};
  ADD_FAILURE() << "no two hosts share a stub domain";
  return {0, 0};
}

TEST(FaultPlane, InactiveByDefaultAndDeliversEverything) {
  sim::FaultPlane plane;
  EXPECT_FALSE(plane.active());
  for (int i = 0; i < 100; ++i) {
    const auto verdict = plane.message(sim::MessageKind::kPublish, 0, 1);
    EXPECT_TRUE(verdict.delivered());
    EXPECT_EQ(verdict.delay_ms, 0.0);
  }
  EXPECT_EQ(plane.stats().dropped(), 0u);
}

TEST(FaultPlane, SameSeedSameVerdictSequence) {
  sim::FaultConfig config;
  config.message_loss = 0.3;
  config.publish_loss = 0.2;
  config.seed = 1234;
  sim::FaultPlane a(config);
  sim::FaultPlane b(config);
  for (int i = 0; i < 2000; ++i) {
    const auto kind = static_cast<sim::MessageKind>(i % 5);
    const auto va = a.message(kind, 0, 1);
    const auto vb = b.message(kind, 0, 1);
    EXPECT_EQ(va.outcome, vb.outcome) << "diverged at message " << i;
    EXPECT_EQ(va.delay_ms, vb.delay_ms);
  }
  EXPECT_EQ(a.stats().lost, b.stats().lost);
}

TEST(FaultPlane, DifferentSeedsDiverge) {
  sim::FaultConfig config;
  config.message_loss = 0.5;
  config.seed = 1;
  sim::FaultPlane a(config);
  config.seed = 2;
  sim::FaultPlane b(config);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.deliver(sim::MessageKind::kData, 0, 1) !=
        b.deliver(sim::MessageKind::kData, 0, 1))
      ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlane, LossRateWithinBinomialBounds) {
  sim::FaultConfig config;
  config.message_loss = 0.3;
  config.seed = 7;
  sim::FaultPlane plane(config);
  const int n = 10'000;
  for (int i = 0; i < n; ++i)
    (void)plane.message(sim::MessageKind::kData, 0, 1);
  const double rate = static_cast<double>(plane.stats().lost) / n;
  EXPECT_GT(rate, 0.27);
  EXPECT_LT(rate, 0.33);
  EXPECT_EQ(plane.stats().lost,
            plane.stats().dropped_by_kind[static_cast<std::size_t>(
                sim::MessageKind::kData)]);
}

TEST(FaultPlane, PublishLossAppliesToPublishOnly) {
  sim::FaultConfig config;
  config.publish_loss = 0.4;
  config.seed = 11;
  sim::FaultPlane plane(config);
  int lookup_lost = 0;
  int publish_lost = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!plane.deliver(sim::MessageKind::kLookup, 0, 1)) ++lookup_lost;
    if (!plane.deliver(sim::MessageKind::kPublish, 0, 1)) ++publish_lost;
  }
  EXPECT_EQ(lookup_lost, 0);
  EXPECT_GT(publish_lost, 2000 * 0.3);
  EXPECT_LT(publish_lost, 2000 * 0.5);
}

TEST(FaultPlane, CrashedHostNeitherSendsNorReceives) {
  sim::FaultPlane plane;  // no loss configured: crash is the only fault
  plane.crash_host(5);
  EXPECT_TRUE(plane.active());
  EXPECT_TRUE(plane.host_crashed(5));

  auto verdict = plane.message(sim::MessageKind::kLookup, 5, 1);
  EXPECT_EQ(verdict.outcome, sim::DeliveryOutcome::kCrashBlocked);
  EXPECT_FALSE(verdict.retryable());  // a retry cannot win until restart
  verdict = plane.message(sim::MessageKind::kLookup, 1, 5);
  EXPECT_EQ(verdict.outcome, sim::DeliveryOutcome::kCrashBlocked);
  EXPECT_TRUE(plane.deliver(sim::MessageKind::kLookup, 1, 2));

  plane.restart_host(5);
  EXPECT_FALSE(plane.active());
  EXPECT_TRUE(plane.deliver(sim::MessageKind::kLookup, 5, 1));
}

TEST(FaultPlane, CrashedIntermediateSwallowsRoutedMessage) {
  sim::FaultPlane plane;
  plane.crash_host(7);
  const std::vector<int> path = {0, 7, 3};  // hop ids == host ids here
  const auto verdict = plane.message_via(
      sim::MessageKind::kPublish, path,
      [](int hop) { return static_cast<net::HostId>(hop); });
  EXPECT_EQ(verdict.outcome, sim::DeliveryOutcome::kCrashBlocked);

  const std::vector<int> clear = {0, 2, 3};
  EXPECT_TRUE(plane
                  .message_via(sim::MessageKind::kPublish, clear,
                               [](int hop) {
                                 return static_cast<net::HostId>(hop);
                               })
                  .delivered());
}

TEST(FaultPlane, PartitionCutsCrossStubTrafficOnly) {
  const net::Topology topology = make_topology(17);
  sim::FaultPlane plane;
  plane.bind_topology(&topology);
  ASSERT_GT(plane.stub_count(), 1u);

  const auto [inside_a, inside_b] = same_stub_pair(topology);
  plane.partition_stub(topology.host(inside_a).stub_domain);

  // Intra-stub traffic still flows inside the partitioned stub.
  EXPECT_TRUE(plane.deliver(sim::MessageKind::kData, inside_a, inside_b));

  // Traffic crossing the cut dies in both directions.
  net::HostId outside = net::kInvalidHost;
  for (net::HostId h = 0; h < topology.host_count(); ++h) {
    if (topology.host(h).stub_domain != topology.host(inside_a).stub_domain) {
      outside = h;
      break;
    }
  }
  ASSERT_NE(outside, net::kInvalidHost);
  EXPECT_EQ(plane.message(sim::MessageKind::kData, inside_a, outside).outcome,
            sim::DeliveryOutcome::kPartitionBlocked);
  EXPECT_EQ(plane.message(sim::MessageKind::kData, outside, inside_a).outcome,
            sim::DeliveryOutcome::kPartitionBlocked);
  EXPECT_FALSE(plane.reachable(inside_a, outside));

  plane.heal_all_partitions();
  EXPECT_FALSE(plane.active());
  EXPECT_TRUE(plane.deliver(sim::MessageKind::kData, inside_a, outside));
}

TEST(FaultPlane, PartitionFractionIsSeededAndSized) {
  const net::Topology topology = make_topology(19);
  sim::FaultConfig config;
  config.seed = 23;
  sim::FaultPlane a(config);
  sim::FaultPlane b(config);
  a.bind_topology(&topology);
  b.bind_topology(&topology);
  const auto chosen_a = a.partition_stub_fraction(0.5);
  const auto chosen_b = b.partition_stub_fraction(0.5);
  EXPECT_EQ(chosen_a, chosen_b);  // same seed, same choice
  EXPECT_EQ(chosen_a.size(),
            static_cast<std::size_t>(0.5 * a.stub_count() + 0.5));
  EXPECT_EQ(a.partitioned_stub_count(), chosen_a.size());
}

TEST(FaultPlane, SlowStubsAddDelay) {
  const net::Topology topology = make_topology(29);
  sim::FaultConfig config;
  config.stub_delay_ms = 40.0;
  config.slow_stub_fraction = 1.0;  // every stub slow: delay is certain
  config.extra_delay_ms = 5.0;
  config.seed = 31;
  sim::FaultPlane plane(config);
  plane.bind_topology(&topology);
  const auto [a, b] = same_stub_pair(topology);  // guaranteed stub-homed
  const auto verdict = plane.message(sim::MessageKind::kData, a, b);
  ASSERT_TRUE(verdict.delivered());
  EXPECT_DOUBLE_EQ(verdict.delay_ms, 45.0);
  EXPECT_GT(plane.stats().added_delay_ms, 0.0);
  EXPECT_EQ(plane.stats().delayed, 1u);
}

TEST(FaultPlane, StatsAccountDropsByKind) {
  sim::FaultConfig config;
  config.message_loss = 1.0;  // everything drops
  config.seed = 37;
  sim::FaultPlane plane(config);
  for (int i = 0; i < 10; ++i)
    (void)plane.message(sim::MessageKind::kNotify, 0, 1);
  EXPECT_EQ(plane.stats().lost, 10u);
  EXPECT_EQ(plane.stats().dropped_by_kind[static_cast<std::size_t>(
                sim::MessageKind::kNotify)],
            10u);
  plane.reset_stats();
  EXPECT_EQ(plane.stats().messages, 0u);
}

TEST(RetryPolicy, DisabledByDefault) {
  util::RetryPolicy policy;
  EXPECT_FALSE(policy.enabled());
  EXPECT_EQ(policy.retries(), 0);
}

TEST(RetryPolicy, ExponentialBackoffWithCapAndJitter) {
  util::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_delay_ms = 100.0;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 500.0;
  policy.jitter = 0.2;
  EXPECT_TRUE(policy.enabled());
  EXPECT_EQ(policy.retries(), 5);

  util::Rng rng(41);
  // Nominal (un-jittered) delays: 100, 200, 400, 500(cap), 500(cap).
  const double nominal[] = {100.0, 200.0, 400.0, 500.0, 500.0};
  for (int retry = 1; retry <= 5; ++retry) {
    const double d = policy.delay_ms(retry, rng);
    EXPECT_GE(d, nominal[retry - 1] * 0.8) << "retry " << retry;
    EXPECT_LE(d, nominal[retry - 1] * 1.2) << "retry " << retry;
  }
}

TEST(RetryPolicy, ZeroJitterIsExact) {
  util::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_ms = 50.0;
  policy.multiplier = 3.0;
  policy.max_delay_ms = 10'000.0;
  policy.jitter = 0.0;
  util::Rng rng(43);
  EXPECT_DOUBLE_EQ(policy.delay_ms(1, rng), 50.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(2, rng), 150.0);
  EXPECT_DOUBLE_EQ(policy.delay_ms(3, rng), 450.0);
}

}  // namespace
}  // namespace topo
