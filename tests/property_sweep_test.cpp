// Parameterized property sweeps: the structural invariants of every
// overlay family, exercised across dimensionalities, seeds and churn
// patterns (gtest TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <string>

#include <gtest/gtest.h>

#include "overlay/chord.hpp"
#include "overlay/ecan.hpp"
#include "overlay/pastry.hpp"
#include "util/stats.hpp"

namespace topo::overlay {
namespace {

// ---------------------------------------------------------------------
// CAN / eCAN sweep over (dims, seed).

struct CanSweepParam {
  std::size_t dims;
  std::uint64_t seed;
};

class CanSweep : public ::testing::TestWithParam<CanSweepParam> {};

TEST_P(CanSweep, ChurnPreservesAllInvariants) {
  const auto [dims, seed] = GetParam();
  util::Rng rng(seed);
  EcanNetwork ecan(dims);
  std::vector<NodeId> live;
  net::HostId next_host = 0;
  for (int step = 0; step < 150; ++step) {
    if (live.size() < 4 || rng.next_bool(0.6)) {
      live.push_back(ecan.join_random(next_host++, rng));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      ecan.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  EXPECT_TRUE(ecan.check_invariants());
  EXPECT_TRUE(ecan.check_membership_index());

  // Volumes tile the space exactly; every key has exactly one owner.
  double volume = 0.0;
  for (const NodeId id : ecan.live_nodes())
    volume += ecan.node(id).zone.volume();
  EXPECT_NEAR(volume, 1.0, 1e-9);
  for (int trial = 0; trial < 20; ++trial) {
    const geom::Point p = geom::Point::random(dims, rng);
    int owners = 0;
    for (const NodeId id : ecan.live_nodes())
      if (ecan.node(id).zone.contains(p)) ++owners;
    EXPECT_EQ(owners, 1);
    EXPECT_TRUE(ecan.node(ecan.owner_of(p)).zone.contains(p));
  }
}

TEST_P(CanSweep, RoutingDeliversFromEveryTenthNode) {
  const auto [dims, seed] = GetParam();
  util::Rng rng(seed + 1);
  EcanNetwork ecan(dims);
  for (net::HostId h = 0; h < 120; ++h) ecan.join_random(h, rng);
  const auto live = ecan.live_nodes();
  for (std::size_t i = 0; i < live.size(); i += 10) {
    const geom::Point key = geom::Point::random(dims, rng);
    const RouteResult plain = ecan.route(live[i], key);
    const RouteResult fast = ecan.route_ecan(live[i], key);
    ASSERT_TRUE(plain.success);
    ASSERT_TRUE(fast.success);
    EXPECT_EQ(plain.path.back(), fast.path.back());
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, CanSweep,
    ::testing::Values(CanSweepParam{2, 1}, CanSweepParam{2, 2},
                      CanSweepParam{3, 1}, CanSweepParam{3, 3},
                      CanSweepParam{4, 1}, CanSweepParam{5, 1}),
    [](const auto& info) {
      return "d" + std::to_string(info.param.dims) + "s" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------
// Chord sweep over (id_bits, seed).

struct RingSweepParam {
  int bits;
  std::uint64_t seed;
};

class ChordSweep : public ::testing::TestWithParam<RingSweepParam> {};

TEST_P(ChordSweep, ResponsibilityIsTotalAndUnique) {
  const auto [bits, seed] = GetParam();
  util::Rng rng(seed);
  ChordNetwork chord(bits);
  for (int i = 0; i < 60; ++i)
    chord.join_random(static_cast<net::HostId>(i), rng);
  // Every key has exactly one responsible node: successor_of is total and
  // consistent with ring order.
  for (int trial = 0; trial < 50; ++trial) {
    const ChordId key = rng.next_u64(chord.ring_size());
    const NodeId owner = chord.successor_of(key);
    ASSERT_TRUE(chord.alive(owner));
    // No live node lies strictly between key and its owner.
    for (const NodeId n : chord.live_nodes()) {
      if (n == owner) continue;
      EXPECT_FALSE(chord.in_arc(chord.node(n).id, key, chord.node(owner).id))
          << "node between key and owner";
    }
  }
}

TEST_P(ChordSweep, RoutingMatchesSuccessorUnderChurn) {
  const auto [bits, seed] = GetParam();
  util::Rng rng(seed + 7);
  ChordNetwork chord(bits);
  std::vector<NodeId> live;
  net::HostId next_host = 0;
  class First final : public FingerSelector {
   public:
    NodeId select(NodeId, int, std::span<const NodeId> c) override {
      return c.front();
    }
  } selector;
  for (int step = 0; step < 120; ++step) {
    if (live.size() < 4 || rng.next_bool(0.6)) {
      live.push_back(chord.join_random(next_host++, rng));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      chord.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 40 == 39) chord.build_all_fingers(selector);
  }
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const ChordId key = rng.next_u64(chord.ring_size());
    const RouteResult route = chord.route(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), chord.successor_of(key));
  }
}

INSTANTIATE_TEST_SUITE_P(BitsAndSeeds, ChordSweep,
                         ::testing::Values(RingSweepParam{10, 1},
                                           RingSweepParam{16, 2},
                                           RingSweepParam{24, 3},
                                           RingSweepParam{32, 4}),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param.bits) +
                                  "s" + std::to_string(info.param.seed);
                         });

// ---------------------------------------------------------------------
// Pastry sweep over (digit_bits, seed).

class PastrySweep : public ::testing::TestWithParam<RingSweepParam> {};

TEST_P(PastrySweep, OwnerIsUniqueMinimizer) {
  const auto [digit_bits, seed] = GetParam();
  util::Rng rng(seed);
  PastryNetwork pastry(24, digit_bits);
  for (int i = 0; i < 60; ++i)
    pastry.join_random(static_cast<net::HostId>(i), rng);
  for (int trial = 0; trial < 50; ++trial) {
    const PastryId key = rng.next_u64(pastry.ring_size());
    const NodeId owner = pastry.numerically_closest(key);
    const PastryId best = pastry.numeric_distance(pastry.node(owner).id, key);
    for (const NodeId n : pastry.live_nodes())
      EXPECT_GE(pastry.numeric_distance(pastry.node(n).id, key), best);
  }
}

TEST_P(PastrySweep, RoutingDeliversUnderChurn) {
  const auto [digit_bits, seed] = GetParam();
  util::Rng rng(seed + 13);
  PastryNetwork pastry(24, digit_bits);
  class First final : public RoutingSlotSelector {
   public:
    NodeId select(NodeId, int, int, std::span<const NodeId> c) override {
      return c.front();
    }
  } selector;
  std::vector<NodeId> live;
  net::HostId next_host = 0;
  for (int step = 0; step < 120; ++step) {
    if (live.size() < 4 || rng.next_bool(0.6)) {
      live.push_back(pastry.join_random(next_host++, rng));
    } else {
      const std::size_t pick = rng.next_u64(live.size());
      pastry.leave(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 40 == 39) pastry.build_all_tables(selector);
  }
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId from = live[rng.next_u64(live.size())];
    const PastryId key = rng.next_u64(pastry.ring_size());
    const RouteResult route = pastry.route(from, key);
    ASSERT_TRUE(route.success);
    EXPECT_EQ(route.path.back(), pastry.numerically_closest(key));
  }
}

INSTANTIATE_TEST_SUITE_P(DigitsAndSeeds, PastrySweep,
                         ::testing::Values(RingSweepParam{2, 1},
                                           RingSweepParam{3, 2},
                                           RingSweepParam{4, 3},
                                           RingSweepParam{6, 4}),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param.bits) +
                                  "s" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace topo::overlay
