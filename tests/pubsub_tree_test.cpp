#include "pubsub/dissemination_tree.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace topo::pubsub {
namespace {

std::vector<TreeRecipient> make_recipients(std::size_t n, util::Rng& rng) {
  std::vector<TreeRecipient> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(TreeRecipient{static_cast<overlay::NodeId>(i + 1),
                                util::BigUint(rng())});
  return out;
}

TEST(DisseminationTree, EveryRecipientCoveredExactlyOnce) {
  util::Rng rng(1);
  const auto recipients = make_recipients(33, rng);
  const DisseminationPlan plan = build_dissemination_tree(0, recipients);
  EXPECT_EQ(plan.edges.size(), 33u);
  std::set<overlay::NodeId> receivers;
  for (const auto& edge : plan.edges)
    EXPECT_TRUE(receivers.insert(edge.to).second);
  for (const auto& recipient : recipients)
    EXPECT_TRUE(receivers.count(recipient.node));
}

TEST(DisseminationTree, DepthIsLogarithmic) {
  util::Rng rng(2);
  for (std::size_t n : {1UL, 7UL, 64UL, 255UL, 1000UL}) {
    const DisseminationPlan plan =
        build_dissemination_tree(0, make_recipients(n, rng));
    const auto bound = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(n) + 1)) + 1);
    EXPECT_LE(plan.depth, bound) << "n=" << n;
  }
}

TEST(DisseminationTree, FanoutAtMostTwo) {
  util::Rng rng(3);
  const DisseminationPlan plan =
      build_dissemination_tree(0, make_recipients(200, rng));
  EXPECT_LE(plan.max_fanout, 2u);
}

TEST(DisseminationTree, EdgesFormTreeRootedAtRoot) {
  util::Rng rng(4);
  const DisseminationPlan plan =
      build_dissemination_tree(99, make_recipients(50, rng));
  // Exactly one edge leaves the root's frontier at a time: check
  // reachability from the root covers all receivers.
  std::set<overlay::NodeId> reached = {99};
  std::size_t grew = 1;
  while (grew != 0) {
    grew = 0;
    for (const auto& edge : plan.edges) {
      if (reached.count(edge.from) && !reached.count(edge.to)) {
        reached.insert(edge.to);
        ++grew;
      }
    }
  }
  EXPECT_EQ(reached.size(), 51u);
}

TEST(DisseminationTree, EmptyRecipients) {
  const DisseminationPlan plan = build_dissemination_tree(0, {});
  EXPECT_TRUE(plan.edges.empty());
  EXPECT_EQ(plan.depth, 0u);
  EXPECT_EQ(plan.max_fanout, 0u);
}

TEST(DisseminationTree, OrderKeySortGroupsNeighbors) {
  // Recipients with adjacent order keys end up adjacent in the tree
  // (parent-child or sibling), which is the locality the landmark-number
  // ordering is meant to exploit.
  std::vector<TreeRecipient> recipients;
  for (int i = 0; i < 8; ++i)
    recipients.push_back(TreeRecipient{static_cast<overlay::NodeId>(i + 10),
                                       util::BigUint(
                                           static_cast<std::uint64_t>(i))});
  const DisseminationPlan plan = build_dissemination_tree(0, recipients);
  // Median (node 14 = key 4) is the root's child.
  EXPECT_EQ(plan.edges[0].from, 0u);
  EXPECT_EQ(plan.edges[0].to, 14u);
}

}  // namespace
}  // namespace topo::pubsub
