// Failure injection: soft state must absorb lost publish messages — the
// maps degrade gracefully and the periodic republish restores them, which
// is the whole point of soft (rather than hard) state.
#include <memory>

#include <gtest/gtest.h>

#include "core/soft_state_overlay.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "softstate/map_service.hpp"

namespace topo {
namespace {

net::Topology make_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology t = net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(t, net::LatencyModel::kManual, rng);
  return t;
}

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<softstate::MapService> maps;
  std::vector<overlay::NodeId> nodes;
  std::unordered_map<overlay::NodeId, proximity::LandmarkVector> vectors;

  explicit Fixture(std::uint64_t seed, std::size_t n = 96) {
    topology = make_topology(seed);
    util::Rng rng(seed + 1);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 8, rng, {}));
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (std::size_t i = 0; i < n; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(ecan->join_random(host, rng));
    }
    maps = std::make_unique<softstate::MapService>(*ecan, *landmarks,
                                                   softstate::MapConfig{});
    for (const auto id : nodes)
      vectors[id] = landmarks->measure(*oracle, ecan->node(id).host);
  }

  std::size_t expected_entries() const {
    std::size_t total = 0;
    for (const auto id : nodes)
      total += static_cast<std::size_t>(ecan->node_level(id));
    return total;
  }
};

TEST(FaultInjection, LossDropsSomePublishes) {
  Fixture f(1);
  f.maps->inject_faults(0.3, 99);
  for (const auto id : f.nodes) f.maps->publish(id, f.vectors[id], 0.0);
  EXPECT_GT(f.maps->stats().lost_messages, 0u);
  EXPECT_LT(f.maps->total_entries(), f.expected_entries());
  // Roughly 30% lost (generous bounds; binomial over ~200+ messages).
  const double loss_rate =
      1.0 - static_cast<double>(f.maps->total_entries()) /
                static_cast<double>(f.expected_entries());
  EXPECT_GT(loss_rate, 0.15);
  EXPECT_LT(loss_rate, 0.45);
}

TEST(FaultInjection, RepublishRoundsConverge) {
  Fixture f(2);
  f.maps->inject_faults(0.3, 77);
  // Round 1 loses ~30%; each further round refills independently-lost
  // slots (an entry survives if ANY round delivered it within TTL).
  for (int round = 0; round < 6; ++round)
    for (const auto id : f.nodes)
      f.maps->publish(id, f.vectors[id], /*now=*/round * 1000.0);
  // After 6 rounds the per-slot miss probability is 0.3^6 ~ 0.07%.
  EXPECT_GE(f.maps->total_entries(), f.expected_entries() - 2);
}

TEST(FaultInjection, ZeroLossIsLossless) {
  Fixture f(3);
  f.maps->inject_faults(0.0, 1);
  for (const auto id : f.nodes) f.maps->publish(id, f.vectors[id], 0.0);
  EXPECT_EQ(f.maps->stats().lost_messages, 0u);
  EXPECT_EQ(f.maps->total_entries(), f.expected_entries());
}

TEST(FaultInjection, LookupsDegradeGracefullyUnderLoss) {
  Fixture f(4, 160);
  f.maps->inject_faults(0.5, 5);
  for (const auto id : f.nodes) f.maps->publish(id, f.vectors[id], 0.0);
  // Even with half the records missing, lookups return candidates (ring
  // expansion widens the search) and never crash.
  int with_candidates = 0;
  int lookups = 0;
  for (const auto id : f.nodes) {
    if (f.ecan->node_level(id) < 1) continue;
    const auto cell = f.ecan->cell_of_node(id, 1);
    const auto adj = f.ecan->adjacent_cell(cell, 1, 0, 1);
    const auto result = f.maps->lookup(id, f.vectors[id], 1, adj, 0.0);
    ++lookups;
    if (!result.candidates.empty()) ++with_candidates;
    if (lookups >= 30) break;
  }
  ASSERT_GT(lookups, 0);
  EXPECT_GT(with_candidates, lookups / 2);
}

TEST(FaultInjection, EndToEndSystemSurvivesLossyNetwork) {
  const net::Topology topology = make_topology(6);
  core::SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  config.map.ttl_ms = 5'000.0;
  config.republish_interval_ms = 1'000.0;
  core::SoftStateOverlay system(topology, config);
  system.maps().inject_faults(0.25, 123);

  util::Rng rng(60);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 64; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count()))));
  system.run_for(20'000.0);
  // Lossy network: entries still present (republish wins the race against
  // TTL with margin 5:1), lookups all succeed.
  EXPECT_GT(system.maps().total_entries(), 0u);
  EXPECT_GT(system.maps().stats().lost_messages, 0u);
  for (int trial = 0; trial < 40; ++trial) {
    const auto from = nodes[rng.next_u64(nodes.size())];
    EXPECT_TRUE(system.lookup(from, geom::Point::random(2, rng)).success);
  }
}

}  // namespace
}  // namespace topo
