// Failure injection: soft state must absorb lost publish messages — the
// maps degrade gracefully and the periodic republish restores them, which
// is the whole point of soft (rather than hard) state.
#include <memory>

#include <gtest/gtest.h>

#include "core/soft_state_overlay.hpp"
#include "net/latency.hpp"
#include "net/transit_stub.hpp"
#include "softstate/map_service.hpp"

namespace topo {
namespace {

net::Topology make_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology t = net::generate_transit_stub(net::tsk_tiny(), rng);
  net::assign_latencies(t, net::LatencyModel::kManual, rng);
  return t;
}

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;
  std::unique_ptr<proximity::LandmarkSet> landmarks;
  std::unique_ptr<overlay::EcanNetwork> ecan;
  std::unique_ptr<softstate::MapService> maps;
  std::vector<overlay::NodeId> nodes;
  std::unordered_map<overlay::NodeId, proximity::LandmarkVector> vectors;

  explicit Fixture(std::uint64_t seed, std::size_t n = 96,
                   softstate::MapConfig map_config = {}) {
    topology = make_topology(seed);
    util::Rng rng(seed + 1);
    oracle = std::make_unique<net::RttOracle>(topology);
    landmarks = std::make_unique<proximity::LandmarkSet>(
        proximity::LandmarkSet::choose_random(topology, 8, rng, {}));
    ecan = std::make_unique<overlay::EcanNetwork>(2);
    for (std::size_t i = 0; i < n; ++i) {
      const auto host =
          static_cast<net::HostId>(rng.next_u64(topology.host_count()));
      nodes.push_back(ecan->join_random(host, rng));
    }
    maps = std::make_unique<softstate::MapService>(*ecan, *landmarks,
                                                   map_config);
    for (const auto id : nodes)
      vectors[id] = landmarks->measure(*oracle, ecan->node(id).host);
  }

  std::size_t expected_entries() const {
    std::size_t total = 0;
    for (const auto id : nodes)
      total += static_cast<std::size_t>(ecan->node_level(id));
    return total;
  }
};

TEST(FaultInjection, LossDropsSomePublishes) {
  Fixture f(1);
  f.maps->inject_faults(0.3, 99);
  for (const auto id : f.nodes) f.maps->publish(id, f.vectors[id], 0.0);
  EXPECT_GT(f.maps->stats().lost_messages, 0u);
  EXPECT_LT(f.maps->total_entries(), f.expected_entries());
  // Roughly 30% lost (generous bounds; binomial over ~200+ messages).
  const double loss_rate =
      1.0 - static_cast<double>(f.maps->total_entries()) /
                static_cast<double>(f.expected_entries());
  EXPECT_GT(loss_rate, 0.15);
  EXPECT_LT(loss_rate, 0.45);
}

TEST(FaultInjection, RepublishRoundsConverge) {
  Fixture f(2);
  f.maps->inject_faults(0.3, 77);
  // Round 1 loses ~30%; each further round refills independently-lost
  // slots (an entry survives if ANY round delivered it within TTL).
  for (int round = 0; round < 6; ++round)
    for (const auto id : f.nodes)
      f.maps->publish(id, f.vectors[id], /*now=*/round * 1000.0);
  // After 6 rounds the per-slot miss probability is 0.3^6 ~ 0.07%.
  EXPECT_GE(f.maps->total_entries(), f.expected_entries() - 2);
}

TEST(FaultInjection, ZeroLossIsLossless) {
  Fixture f(3);
  f.maps->inject_faults(0.0, 1);
  for (const auto id : f.nodes) f.maps->publish(id, f.vectors[id], 0.0);
  EXPECT_EQ(f.maps->stats().lost_messages, 0u);
  EXPECT_EQ(f.maps->total_entries(), f.expected_entries());
}

TEST(FaultInjection, LookupsDegradeGracefullyUnderLoss) {
  Fixture f(4, 160);
  f.maps->inject_faults(0.5, 5);
  for (const auto id : f.nodes) f.maps->publish(id, f.vectors[id], 0.0);
  // Even with half the records missing, lookups return candidates (ring
  // expansion widens the search) and never crash.
  int with_candidates = 0;
  int lookups = 0;
  for (const auto id : f.nodes) {
    if (f.ecan->node_level(id) < 1) continue;
    const auto cell = f.ecan->cell_of_node(id, 1);
    const auto adj = f.ecan->adjacent_cell(cell, 1, 0, 1);
    const auto result = f.maps->lookup(id, f.vectors[id], 1, adj, 0.0);
    ++lookups;
    if (!result.candidates.empty()) ++with_candidates;
    if (lookups >= 30) break;
  }
  ASSERT_GT(lookups, 0);
  EXPECT_GT(with_candidates, lookups / 2);
}

TEST(FaultInjection, EndToEndSystemSurvivesLossyNetwork) {
  const net::Topology topology = make_topology(6);
  core::SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  config.map.ttl_ms = 5'000.0;
  config.republish_interval_ms = 1'000.0;
  core::SoftStateOverlay system(topology, config);
  system.maps().inject_faults(0.25, 123);

  util::Rng rng(60);
  std::vector<overlay::NodeId> nodes;
  for (int i = 0; i < 64; ++i)
    nodes.push_back(system.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count()))));
  system.run_for(20'000.0);
  // Lossy network: entries still present (republish wins the race against
  // TTL with margin 5:1), lookups all succeed.
  EXPECT_GT(system.maps().total_entries(), 0u);
  EXPECT_GT(system.maps().stats().lost_messages, 0u);
  for (int trial = 0; trial < 40; ++trial) {
    const auto from = nodes[rng.next_u64(nodes.size())];
    EXPECT_TRUE(system.lookup(from, geom::Point::random(2, rng)).success);
  }
}

TEST(FaultInjection, InjectFaultsShimRoutesThroughFaultPlane) {
  Fixture f(12);
  f.maps->inject_faults(0.3, 99);
  ASSERT_NE(f.maps->fault_plane(), nullptr);
  EXPECT_TRUE(f.maps->fault_plane()->active());
  for (const auto id : f.nodes) f.maps->publish(id, f.vectors[id], 0.0);
  // The legacy knob is a thin shim over the plane: the service's loss
  // counter and the plane's are the same number.
  EXPECT_GT(f.maps->stats().lost_messages, 0u);
  EXPECT_EQ(f.maps->stats().lost_messages, f.maps->fault_plane()->stats().lost);
}

TEST(ReplicaPlacement, FailoverSurvivesCrashedOwner) {
  softstate::MapConfig map_config;
  map_config.replicas = 3;
  Fixture f(8, 160, map_config);
  sim::FaultPlane plane;  // crash-stops only, no loss
  f.maps->set_fault_plane(&plane);
  for (const auto id : f.nodes) f.maps->publish(id, f.vectors[id], 0.0);

  bool demonstrated = false;
  for (const auto querier : f.nodes) {
    if (f.ecan->node_level(querier) < 1) continue;
    const auto cell = f.ecan->cell_of_node(querier, 1);
    const auto adj = f.ecan->adjacent_cell(cell, 1, 0, 1);
    softstate::LookupResult meta;
    const auto entries =
        f.maps->lookup_entries(querier, f.vectors[querier], 1, adj, 0.0,
                               &meta);
    if (entries.empty() || meta.owner == overlay::kInvalidNode) continue;
    const net::HostId owner_host = f.ecan->node(meta.owner).host;
    if (owner_host == f.ecan->node(querier).host) continue;

    plane.crash_host(owner_host);
    softstate::LookupResult failover_meta;
    const auto failover_entries = f.maps->lookup_entries(
        querier, f.vectors[querier], 1, adj, 0.0, &failover_meta);
    plane.restart_host(owner_host);
    if (failover_entries.empty()) continue;  // all replicas on that host

    // The fetch failed over to a replica owner on a live host.
    EXPECT_NE(f.ecan->node(failover_meta.owner).host, owner_host);
    EXPECT_GT(failover_meta.replicas_tried, 1u);
    EXPECT_FALSE(failover_meta.fault_blocked);
    EXPECT_GE(f.maps->stats().lookup_failovers, 1u);
    demonstrated = true;
    break;
  }
  EXPECT_TRUE(demonstrated)
      << "no querier could demonstrate replica failover";
}

TEST(ReplicaPlacement, SingleReplicaConfigKeepsLegacyEntryCount) {
  // replicas = 1 must be the exact legacy protocol: one record per node
  // per level, nothing extra published or collapsed.
  Fixture f(13);
  for (const auto id : f.nodes) f.maps->publish(id, f.vectors[id], 0.0);
  EXPECT_EQ(f.maps->total_entries(), f.expected_entries());
  EXPECT_EQ(f.maps->stats().replica_collapses, 0u);
}

TEST(LazyRepair, DelayedDeadReportCannotEvictFresherRecord) {
  Fixture f(9);
  // Any node with a level-1 record will do.
  overlay::NodeId node = overlay::kInvalidNode;
  for (const auto id : f.nodes)
    if (f.ecan->node_level(id) >= 1) {
      node = id;
      break;
    }
  ASSERT_NE(node, overlay::kInvalidNode);
  f.maps->publish(node, f.vectors[node], 0.0);

  // The owner of the node's level-1 record.
  const auto number = f.landmarks->landmark_number(f.vectors[node]);
  const auto cell = f.ecan->cell_of_node(node, 1);
  const geom::Point position = f.maps->map_position(number, 1, cell);
  const overlay::NodeId owner = f.ecan->owner_of(position);

  // The node republishes at t=10; a report about a probe that failed at
  // t=5 arrives afterwards (delayed in flight). The fresher record must
  // survive it.
  f.maps->publish(node, f.vectors[node], 10.0);
  const std::size_t before = f.maps->total_entries();
  const auto deletions_before = f.maps->stats().lazy_deletions;
  f.maps->report_dead(owner, node, /*reported_at=*/5.0);
  EXPECT_EQ(f.maps->total_entries(), before);
  EXPECT_EQ(f.maps->stats().lazy_deletions, deletions_before);

  // The legacy unconditional report (no timestamp) still evicts.
  f.maps->report_dead(owner, node);
  EXPECT_LT(f.maps->total_entries(), before);
  EXPECT_GT(f.maps->stats().lazy_deletions, deletions_before);
}

TEST(GracefulDegradation, JoinsFallBackToLandmarkWhenMapsUnreachable) {
  const net::Topology topology = make_topology(10);
  core::SystemConfig config;
  config.landmark_count = 8;
  config.rtt_budget = 8;
  config.fault.message_loss = 1.0;  // no map message ever gets through
  config.fault.seed = 55;
  core::SoftStateOverlay system(topology, config);

  util::Rng rng(70);
  for (int i = 0; i < 48; ++i) {
    const auto id = system.join(
        static_cast<net::HostId>(rng.next_u64(topology.host_count())));
    ASSERT_NE(id, overlay::kInvalidNode);  // a join never hard-fails
  }
  // Every publish was lost, so selections could not be map-backed — but
  // the joining nodes knew their landmark vectors and degraded to
  // landmark-only pre-selection instead of failing.
  EXPECT_EQ(system.maps().total_entries(), 0u);
  const auto& fallback = system.selector().fallback_stats();
  EXPECT_GT(fallback.selections, 0u);
  EXPECT_EQ(fallback.map_backed, 0u);
  EXPECT_GT(fallback.landmark_fallbacks, 0u);
}

TEST(FaultDeterminism, SameSeedSameStatsAtAnyThreadCount) {
  const net::Topology topology = make_topology(11);
  struct Trace {
    std::uint64_t lost = 0;
    std::uint64_t retries = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t plane_messages = 0;
    std::uint64_t plane_lost = 0;
    std::size_t entries = 0;
    bool operator==(const Trace&) const = default;
  };
  const auto run = [&topology] {
    core::SystemConfig config;
    config.landmark_count = 8;
    config.rtt_budget = 8;
    config.map.ttl_ms = 5'000.0;
    config.republish_interval_ms = 1'000.0;
    config.fault.message_loss = 0.2;
    config.fault.seed = 77;
    config.retry.max_attempts = 3;
    core::SoftStateOverlay system(topology, config);
    util::Rng rng(71);
    for (int i = 0; i < 48; ++i)
      system.join(
          static_cast<net::HostId>(rng.next_u64(topology.host_count())));
    system.run_for(5'000.0);
    Trace t;
    t.lost = system.maps().stats().lost_messages;
    t.retries = system.maps().stats().publish_retries;
    t.recoveries = system.maps().stats().retry_recoveries;
    t.plane_messages = system.faults().stats().messages;
    t.plane_lost = system.faults().stats().lost;
    t.entries = system.maps().total_entries();
    return t;
  };
  // A trial is single-threaded by construction (the plane draws in call
  // order); two identical runs must produce identical fault traces, which
  // is what makes sweeps reproducible at any THREADS setting.
  const Trace a = run();
  const Trace b = run();
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.lost, 0u);
  EXPECT_GT(a.retries, 0u);
}

}  // namespace
}  // namespace topo
