#include "proximity/landmarks.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "net/latency.hpp"
#include "net/transit_stub.hpp"

namespace topo::proximity {
namespace {

struct Fixture {
  net::Topology topology;
  std::unique_ptr<net::RttOracle> oracle;

  explicit Fixture(std::uint64_t seed,
                   net::LatencyModel model = net::LatencyModel::kManual) {
    util::Rng rng(seed);
    topology = net::generate_transit_stub(net::tsk_tiny(), rng);
    net::assign_latencies(topology, model, rng);
    oracle = std::make_unique<net::RttOracle>(topology);
  }
};

TEST(VectorDistance, Euclidean) {
  EXPECT_DOUBLE_EQ(vector_distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(vector_distance({1, 1, 1}, {1, 1, 1}), 0.0);
}

TEST(LandmarkSet, ChooseRandomPicksDistinctHosts) {
  Fixture f(1);
  util::Rng rng(2);
  const LandmarkSet set =
      LandmarkSet::choose_random(f.topology, 10, rng, {});
  EXPECT_EQ(set.count(), 10);
  const std::set<net::HostId> unique(set.hosts().begin(), set.hosts().end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(LandmarkSet, MeasureProducesRttVectorAndCountsProbes) {
  Fixture f(3);
  util::Rng rng(4);
  const LandmarkSet set = LandmarkSet::choose_random(f.topology, 8, rng, {});
  f.oracle->reset_probe_count();
  const LandmarkVector v = set.measure(*f.oracle, 0);
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(f.oracle->probe_count(), 8u);  // one probe per landmark
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(v[i], f.oracle->latency_ms(0, set.hosts()[i]));
}

TEST(LandmarkSet, OrderingSortsByRtt) {
  Fixture f(5);
  util::Rng rng(6);
  const LandmarkSet set = LandmarkSet::choose_random(f.topology, 6, rng, {});
  const LandmarkVector v = set.measure(*f.oracle, 10);
  const auto order = set.ordering(v);
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(v[static_cast<std::size_t>(order[i - 1])],
              v[static_cast<std::size_t>(order[i])]);
  // Ordering is a permutation.
  EXPECT_EQ(std::set<int>(order.begin(), order.end()).size(), 6u);
}

TEST(LandmarkSet, CloseHostsGetCloseLandmarkNumbers) {
  // Hosts in the same stub domain should have much closer landmark numbers
  // (as unit scalars) than hosts in different transit domains, on average.
  Fixture f(7);
  util::Rng rng(8);
  LandmarkConfig config;
  config.scale_ms = 60.0;  // tsk-tiny manual diameter is a few tens of ms
  const LandmarkSet set =
      LandmarkSet::choose_random(f.topology, 8, rng, config);

  // Gather a same-stub pair and a cross-domain pair.
  double same_total = 0.0;
  double cross_total = 0.0;
  int same_count = 0;
  int cross_count = 0;
  for (net::HostId a = 0; a < f.topology.host_count(); a += 13) {
    for (net::HostId b = a + 1; b < f.topology.host_count(); b += 17) {
      const auto& ia = f.topology.host(a);
      const auto& ib = f.topology.host(b);
      const double gap = std::abs(set.unit_number(set.measure(*f.oracle, a)) -
                                  set.unit_number(set.measure(*f.oracle, b)));
      if (ia.stub_domain >= 0 && ia.stub_domain == ib.stub_domain) {
        same_total += gap;
        ++same_count;
      } else if (ia.transit_domain != ib.transit_domain) {
        cross_total += gap;
        ++cross_count;
      }
    }
  }
  ASSERT_GT(same_count, 0);
  ASSERT_GT(cross_count, 0);
  EXPECT_LT(same_total / same_count, cross_total / cross_count);
}

TEST(LandmarkSet, VectorIndexSubsetReducesNumberBits) {
  Fixture f(9);
  util::Rng rng(10);
  LandmarkConfig full;
  full.bits_per_dim = 4;
  LandmarkConfig subset = full;
  subset.vector_index_size = 3;
  const LandmarkSet full_set =
      LandmarkSet::choose_random(f.topology, 12, rng, full);
  util::Rng rng2(10);
  const LandmarkSet subset_set =
      LandmarkSet::choose_random(f.topology, 12, rng2, subset);
  EXPECT_EQ(full_set.number_bits(), 12 * 4);
  EXPECT_EQ(subset_set.number_bits(), 3 * 4);
}

TEST(LandmarkSet, LandmarkNumberClampsLargeRtts) {
  Fixture f(11);
  util::Rng rng(12);
  LandmarkConfig config;
  config.scale_ms = 0.001;  // everything saturates
  const LandmarkSet set =
      LandmarkSet::choose_random(f.topology, 4, rng, config);
  const LandmarkVector v = set.measure(*f.oracle, 0);
  // Must not crash and must produce the max-corner cell deterministically.
  const auto n1 = set.landmark_number(v);
  const auto n2 = set.landmark_number(v);
  EXPECT_EQ(n1, n2);
}

TEST(LandmarkSet, UnitNumberInUnitInterval) {
  Fixture f(13);
  util::Rng rng(14);
  const LandmarkSet set = LandmarkSet::choose_random(f.topology, 5, rng, {});
  for (net::HostId h = 0; h < 50; h += 5) {
    const double u = set.unit_number(set.measure(*f.oracle, h));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SquaredDistance, IsTheSquareUnderTheSameAccumulation) {
  // vector_distance is sqrt of the same dim-order accumulation, so the two
  // must agree bit-for-bit through sqrt.
  util::Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t m = 1 + rng.next_u64(20);
    LandmarkVector a(m), b(m);
    for (std::size_t i = 0; i < m; ++i) {
      a[i] = rng.next_double(0.0, 400.0);
      b[i] = rng.next_double(0.0, 400.0);
    }
    EXPECT_EQ(vector_distance(a, b), std::sqrt(squared_distance(a, b)));
    EXPECT_EQ(squared_distance(a, b), squared_distance(b, a));
  }
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
}

TEST(SquaredDistancesSoa, BitIdenticalToScalarKernel) {
  util::Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 1 + rng.next_u64(16);
    const std::size_t count = 1 + rng.next_u64(40);
    LandmarkVector query(m);
    for (auto& q : query) q = rng.next_double(0.0, 400.0);
    std::vector<LandmarkVector> candidates(count, LandmarkVector(m));
    std::vector<double> soa(m * count);
    for (std::size_t i = 0; i < count; ++i)
      for (std::size_t d = 0; d < m; ++d) {
        candidates[i][d] = rng.next_double(0.0, 400.0);
        soa[d * count + i] = candidates[i][d];  // dim-major lanes
      }
    std::vector<double> out(count);
    squared_distances_soa(soa, count, query, out);
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_EQ(out[i], squared_distance(candidates[i], query)) << i;
  }
}

TEST(LandmarkSet, MeasureManyMatchesScalarMeasure) {
  Fixture f(23);
  util::Rng rng(24);
  const LandmarkSet set = LandmarkSet::choose_random(f.topology, 9, rng, {});
  std::vector<net::HostId> hosts;
  for (net::HostId h = 0; h < f.topology.host_count(); h += 3)
    hosts.push_back(h);

  f.oracle->reset_probe_count();
  std::vector<LandmarkVector> bulk(hosts.size());
  std::vector<double> column;
  set.measure_many(*f.oracle, hosts, bulk, column);
  const std::uint64_t bulk_probes = f.oracle->probe_count();

  f.oracle->reset_probe_count();
  for (std::size_t i = 0; i < hosts.size(); ++i)
    ASSERT_EQ(bulk[i], set.measure(*f.oracle, hosts[i])) << hosts[i];
  EXPECT_EQ(bulk_probes, f.oracle->probe_count());
}

TEST(LandmarkSet, LandmarkNumbersMatchScalarDerivation) {
  Fixture f(25);
  util::Rng rng(26);
  for (const int index_size : {0, 4}) {
    LandmarkConfig config;
    config.vector_index_size = index_size;
    const LandmarkSet set =
        LandmarkSet::choose_random(f.topology, 10, rng, config);
    std::vector<LandmarkVector> vectors;
    for (net::HostId h = 0; h < 40; h += 4)
      vectors.push_back(set.measure(*f.oracle, h));

    std::vector<util::BigUint> bulk(vectors.size());
    std::vector<std::uint32_t> arena;
    set.landmark_numbers(vectors, arena, bulk);
    std::vector<std::uint32_t> scratch(
        static_cast<std::size_t>(set.number_dims()));
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      const util::BigUint scalar = set.landmark_number(vectors[i]);
      EXPECT_EQ(bulk[i], scalar);
      EXPECT_EQ(set.landmark_number(vectors[i], scratch), scalar);
    }
  }
}

TEST(Factorial, SmallValues) {
  EXPECT_EQ(factorial(0), 1u);
  EXPECT_EQ(factorial(1), 1u);
  EXPECT_EQ(factorial(5), 120u);
  EXPECT_EQ(factorial(10), 3628800u);
}

TEST(OrderingRank, BijectiveForSmallM) {
  // All 4! permutations map to distinct ranks in [0, 24).
  std::vector<int> perm = {0, 1, 2, 3};
  std::set<std::uint64_t> ranks;
  std::sort(perm.begin(), perm.end());
  do {
    const std::uint64_t rank = ordering_rank(perm);
    EXPECT_LT(rank, 24u);
    ranks.insert(rank);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(ranks.size(), 24u);
}

TEST(OrderingRank, IdentityIsZeroReverseIsMax) {
  EXPECT_EQ(ordering_rank({0, 1, 2, 3, 4}), 0u);
  EXPECT_EQ(ordering_rank({4, 3, 2, 1, 0}), factorial(5) - 1);
}

}  // namespace
}  // namespace topo::proximity
