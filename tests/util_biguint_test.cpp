#include "util/biguint.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace topo::util {
namespace {

TEST(BigUint, ZeroAndOne) {
  EXPECT_EQ(BigUint::zero().low64(), 0u);
  EXPECT_EQ(BigUint::one().low64(), 1u);
  EXPECT_TRUE(BigUint::zero() < BigUint::one());
  EXPECT_EQ(BigUint::zero().highest_bit(), -1);
  EXPECT_EQ(BigUint::one().highest_bit(), 0);
}

TEST(BigUint, BitSetAndGet) {
  BigUint x;
  for (int bit : {0, 1, 63, 64, 127, 128, 200, 255}) {
    EXPECT_FALSE(x.bit(bit));
    x.set_bit(bit, true);
    EXPECT_TRUE(x.bit(bit));
  }
  EXPECT_EQ(x.highest_bit(), 255);
  x.set_bit(255, false);
  EXPECT_EQ(x.highest_bit(), 200);
}

TEST(BigUint, Pow2) {
  EXPECT_EQ(BigUint::pow2(0).low64(), 1u);
  EXPECT_EQ(BigUint::pow2(10).low64(), 1024u);
  EXPECT_EQ(BigUint::pow2(100).highest_bit(), 100);
}

TEST(BigUint, ShiftsMatchLow64Semantics) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t v = rng();
    const int s = static_cast<int>(rng.next_u64(63)) + 1;
    EXPECT_EQ((BigUint(v) << s >> s).low64(), v);  // round trip, no overflow
    EXPECT_EQ((BigUint(v) >> s).low64(), v >> s);
  }
}

TEST(BigUint, ShiftAcrossWordBoundaries) {
  const BigUint x(0xDEADBEEFCAFEF00DULL);
  const BigUint shifted = x << 100;
  EXPECT_EQ((shifted >> 100).low64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(shifted.highest_bit(), x.highest_bit() + 100);
  // Whole-word shift.
  EXPECT_EQ(((x << 64) >> 64).low64(), x.low64());
  // Shift out entirely.
  EXPECT_EQ((x << 256).highest_bit(), -1);
  EXPECT_EQ((x >> 256).highest_bit(), -1);
}

TEST(BigUint, AdditionWithCarryChain) {
  // (2^128 - 1) + 1 == 2^128.
  BigUint almost;
  for (int i = 0; i < 128; ++i) almost.set_bit(i, true);
  const BigUint sum = almost + BigUint::one();
  EXPECT_EQ(sum, BigUint::pow2(128));
}

TEST(BigUint, SubtractionInverse) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    BigUint a;
    BigUint b;
    for (int w = 0; w < 3; ++w) {
      a |= BigUint(rng()) << (w * 64);
      b |= BigUint(rng()) << (w * 64);
    }
    EXPECT_EQ(a + b - b, a);
  }
}

TEST(BigUint, ComparisonAgainstUint128Reference) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t a_lo = rng();
    const std::uint64_t a_hi = rng.next_u64(4);
    const std::uint64_t b_lo = rng();
    const std::uint64_t b_hi = rng.next_u64(4);
    const unsigned __int128 ra =
        (static_cast<unsigned __int128>(a_hi) << 64) | a_lo;
    const unsigned __int128 rb =
        (static_cast<unsigned __int128>(b_hi) << 64) | b_lo;
    const BigUint ba = (BigUint(a_hi) << 64) | BigUint(a_lo);
    const BigUint bb = (BigUint(b_hi) << 64) | BigUint(b_lo);
    EXPECT_EQ(ba < bb, ra < rb);
    EXPECT_EQ(ba == bb, ra == rb);
    EXPECT_EQ(ba >= bb, ra >= rb);
  }
}

TEST(BigUint, BitwiseOps) {
  const BigUint a = (BigUint(0xF0F0ULL) << 128) | BigUint(0xAAAAULL);
  const BigUint b = (BigUint(0x0FF0ULL) << 128) | BigUint(0x5555ULL);
  EXPECT_EQ(((a & b) >> 128).low64(), 0x00F0ULL);
  EXPECT_EQ((a | b).low64(), 0xFFFFULL);
  EXPECT_EQ((a ^ b).low64(), 0xFFFFULL);
  EXPECT_EQ(((a ^ b) >> 128).low64(), 0xFF00ULL);
}

TEST(BigUint, ToUnitScalesCorrectly) {
  // 2^7 out of 8 bits = 0.5.
  EXPECT_DOUBLE_EQ(BigUint::pow2(7).to_unit(8), 0.5);
  // 3 out of 2 bits = 0.75.
  EXPECT_DOUBLE_EQ(BigUint(3).to_unit(2), 0.75);
  // Zero.
  EXPECT_DOUBLE_EQ(BigUint::zero().to_unit(200), 0.0);
  // Max of 200 bits is just under 1.
  BigUint max;
  for (int i = 0; i < 200; ++i) max.set_bit(i, true);
  EXPECT_LT(max.to_unit(200), 1.0);
  EXPECT_GT(max.to_unit(200), 0.9999);
}

TEST(BigUint, ToUnitPreservesOrder) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    BigUint a;
    BigUint b;
    for (int w = 0; w < 4; ++w) {
      a |= BigUint(rng()) << (w * 64);
      b |= BigUint(rng()) << (w * 64);
    }
    if (a < b)
      EXPECT_LE(a.to_unit(256), b.to_unit(256));
    else
      EXPECT_GE(a.to_unit(256), b.to_unit(256));
  }
}

TEST(BigUint, TopBits) {
  // 0b1101 in 4 bits, top 2 bits = 0b11.
  EXPECT_EQ(BigUint(0b1101).top_bits(4, 2), 0b11u);
  // Wide value: 0xAB << 192 in 200 bits, top 8 bits = 0xAB.
  const BigUint wide = BigUint(0xABULL) << 192;
  EXPECT_EQ(wide.top_bits(200, 8), 0xABu);
  // count >= total returns the value itself.
  EXPECT_EQ(BigUint(0b101).top_bits(3, 64), 0b101u);
}

TEST(BigUint, ToHex) {
  EXPECT_EQ(BigUint::zero().to_hex(), std::string(64, '0'));
  const std::string hex = BigUint(0xDEADULL).to_hex();
  EXPECT_EQ(hex.substr(60), "dead");
}

}  // namespace
}  // namespace topo::util
