file(REMOVE_RECURSE
  "CMakeFiles/overlay_sim.dir/overlay_sim.cpp.o"
  "CMakeFiles/overlay_sim.dir/overlay_sim.cpp.o.d"
  "overlay_sim"
  "overlay_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
