# Empty compiler generated dependencies file for overlay_sim.
# This may be replaced when dependencies are built.
