file(REMOVE_RECURSE
  "CMakeFiles/topogen.dir/topogen.cpp.o"
  "CMakeFiles/topogen.dir/topogen.cpp.o.d"
  "topogen"
  "topogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
