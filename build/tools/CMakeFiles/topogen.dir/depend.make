# Empty dependencies file for topogen.
# This may be replaced when dependencies are built.
