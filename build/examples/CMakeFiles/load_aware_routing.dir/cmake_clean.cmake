file(REMOVE_RECURSE
  "CMakeFiles/load_aware_routing.dir/load_aware_routing.cpp.o"
  "CMakeFiles/load_aware_routing.dir/load_aware_routing.cpp.o.d"
  "load_aware_routing"
  "load_aware_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_aware_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
