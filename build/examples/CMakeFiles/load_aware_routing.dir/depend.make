# Empty dependencies file for load_aware_routing.
# This may be replaced when dependencies are built.
