# Empty compiler generated dependencies file for churn_maintenance.
# This may be replaced when dependencies are built.
