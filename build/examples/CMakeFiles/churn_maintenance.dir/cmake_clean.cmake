file(REMOVE_RECURSE
  "CMakeFiles/churn_maintenance.dir/churn_maintenance.cpp.o"
  "CMakeFiles/churn_maintenance.dir/churn_maintenance.cpp.o.d"
  "churn_maintenance"
  "churn_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
