file(REMOVE_RECURSE
  "CMakeFiles/multi_overlay.dir/multi_overlay.cpp.o"
  "CMakeFiles/multi_overlay.dir/multi_overlay.cpp.o.d"
  "multi_overlay"
  "multi_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
