# Empty dependencies file for multi_overlay.
# This may be replaced when dependencies are built.
