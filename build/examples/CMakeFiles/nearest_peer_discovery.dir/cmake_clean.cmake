file(REMOVE_RECURSE
  "CMakeFiles/nearest_peer_discovery.dir/nearest_peer_discovery.cpp.o"
  "CMakeFiles/nearest_peer_discovery.dir/nearest_peer_discovery.cpp.o.d"
  "nearest_peer_discovery"
  "nearest_peer_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearest_peer_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
