# Empty compiler generated dependencies file for nearest_peer_discovery.
# This may be replaced when dependencies are built.
