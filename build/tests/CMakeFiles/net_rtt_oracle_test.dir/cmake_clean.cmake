file(REMOVE_RECURSE
  "CMakeFiles/net_rtt_oracle_test.dir/net_rtt_oracle_test.cpp.o"
  "CMakeFiles/net_rtt_oracle_test.dir/net_rtt_oracle_test.cpp.o.d"
  "net_rtt_oracle_test"
  "net_rtt_oracle_test.pdb"
  "net_rtt_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_rtt_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
