# Empty dependencies file for net_rtt_oracle_test.
# This may be replaced when dependencies are built.
