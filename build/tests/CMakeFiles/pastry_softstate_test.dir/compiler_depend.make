# Empty compiler generated dependencies file for pastry_softstate_test.
# This may be replaced when dependencies are built.
