file(REMOVE_RECURSE
  "CMakeFiles/pastry_softstate_test.dir/pastry_softstate_test.cpp.o"
  "CMakeFiles/pastry_softstate_test.dir/pastry_softstate_test.cpp.o.d"
  "pastry_softstate_test"
  "pastry_softstate_test.pdb"
  "pastry_softstate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastry_softstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
