# Empty compiler generated dependencies file for softstate_fault_test.
# This may be replaced when dependencies are built.
