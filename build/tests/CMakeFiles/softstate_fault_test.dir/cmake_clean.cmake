file(REMOVE_RECURSE
  "CMakeFiles/softstate_fault_test.dir/softstate_fault_test.cpp.o"
  "CMakeFiles/softstate_fault_test.dir/softstate_fault_test.cpp.o.d"
  "softstate_fault_test"
  "softstate_fault_test.pdb"
  "softstate_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softstate_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
