# Empty dependencies file for net_transit_stub_test.
# This may be replaced when dependencies are built.
