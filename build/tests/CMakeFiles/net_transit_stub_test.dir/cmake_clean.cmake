file(REMOVE_RECURSE
  "CMakeFiles/net_transit_stub_test.dir/net_transit_stub_test.cpp.o"
  "CMakeFiles/net_transit_stub_test.dir/net_transit_stub_test.cpp.o.d"
  "net_transit_stub_test"
  "net_transit_stub_test.pdb"
  "net_transit_stub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_transit_stub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
