# Empty compiler generated dependencies file for util_svd_test.
# This may be replaced when dependencies are built.
