file(REMOVE_RECURSE
  "CMakeFiles/util_svd_test.dir/util_svd_test.cpp.o"
  "CMakeFiles/util_svd_test.dir/util_svd_test.cpp.o.d"
  "util_svd_test"
  "util_svd_test.pdb"
  "util_svd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
