file(REMOVE_RECURSE
  "CMakeFiles/overlay_tacan_test.dir/overlay_tacan_test.cpp.o"
  "CMakeFiles/overlay_tacan_test.dir/overlay_tacan_test.cpp.o.d"
  "overlay_tacan_test"
  "overlay_tacan_test.pdb"
  "overlay_tacan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_tacan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
