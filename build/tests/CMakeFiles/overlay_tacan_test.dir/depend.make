# Empty dependencies file for overlay_tacan_test.
# This may be replaced when dependencies are built.
