file(REMOVE_RECURSE
  "CMakeFiles/core_selectors_test.dir/core_selectors_test.cpp.o"
  "CMakeFiles/core_selectors_test.dir/core_selectors_test.cpp.o.d"
  "core_selectors_test"
  "core_selectors_test.pdb"
  "core_selectors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_selectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
