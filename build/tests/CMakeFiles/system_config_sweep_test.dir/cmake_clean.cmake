file(REMOVE_RECURSE
  "CMakeFiles/system_config_sweep_test.dir/system_config_sweep_test.cpp.o"
  "CMakeFiles/system_config_sweep_test.dir/system_config_sweep_test.cpp.o.d"
  "system_config_sweep_test"
  "system_config_sweep_test.pdb"
  "system_config_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_config_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
