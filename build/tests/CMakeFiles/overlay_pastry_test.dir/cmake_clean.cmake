file(REMOVE_RECURSE
  "CMakeFiles/overlay_pastry_test.dir/overlay_pastry_test.cpp.o"
  "CMakeFiles/overlay_pastry_test.dir/overlay_pastry_test.cpp.o.d"
  "overlay_pastry_test"
  "overlay_pastry_test.pdb"
  "overlay_pastry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_pastry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
