# Empty dependencies file for overlay_pastry_test.
# This may be replaced when dependencies are built.
