# Empty compiler generated dependencies file for geom_hilbert_test.
# This may be replaced when dependencies are built.
