file(REMOVE_RECURSE
  "CMakeFiles/geom_hilbert_test.dir/geom_hilbert_test.cpp.o"
  "CMakeFiles/geom_hilbert_test.dir/geom_hilbert_test.cpp.o.d"
  "geom_hilbert_test"
  "geom_hilbert_test.pdb"
  "geom_hilbert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_hilbert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
