file(REMOVE_RECURSE
  "CMakeFiles/softstate_map_test.dir/softstate_map_test.cpp.o"
  "CMakeFiles/softstate_map_test.dir/softstate_map_test.cpp.o.d"
  "softstate_map_test"
  "softstate_map_test.pdb"
  "softstate_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softstate_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
