# Empty dependencies file for softstate_map_test.
# This may be replaced when dependencies are built.
