# Empty dependencies file for geom_zone_test.
# This may be replaced when dependencies are built.
