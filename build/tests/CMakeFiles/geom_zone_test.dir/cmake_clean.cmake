file(REMOVE_RECURSE
  "CMakeFiles/geom_zone_test.dir/geom_zone_test.cpp.o"
  "CMakeFiles/geom_zone_test.dir/geom_zone_test.cpp.o.d"
  "geom_zone_test"
  "geom_zone_test.pdb"
  "geom_zone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_zone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
