file(REMOVE_RECURSE
  "CMakeFiles/util_biguint_test.dir/util_biguint_test.cpp.o"
  "CMakeFiles/util_biguint_test.dir/util_biguint_test.cpp.o.d"
  "util_biguint_test"
  "util_biguint_test.pdb"
  "util_biguint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_biguint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
