# Empty dependencies file for proximity_landmarks_test.
# This may be replaced when dependencies are built.
