file(REMOVE_RECURSE
  "CMakeFiles/proximity_landmarks_test.dir/proximity_landmarks_test.cpp.o"
  "CMakeFiles/proximity_landmarks_test.dir/proximity_landmarks_test.cpp.o.d"
  "proximity_landmarks_test"
  "proximity_landmarks_test.pdb"
  "proximity_landmarks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_landmarks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
