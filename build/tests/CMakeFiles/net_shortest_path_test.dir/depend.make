# Empty dependencies file for net_shortest_path_test.
# This may be replaced when dependencies are built.
