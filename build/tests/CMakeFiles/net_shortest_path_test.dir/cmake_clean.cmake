file(REMOVE_RECURSE
  "CMakeFiles/net_shortest_path_test.dir/net_shortest_path_test.cpp.o"
  "CMakeFiles/net_shortest_path_test.dir/net_shortest_path_test.cpp.o.d"
  "net_shortest_path_test"
  "net_shortest_path_test.pdb"
  "net_shortest_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_shortest_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
