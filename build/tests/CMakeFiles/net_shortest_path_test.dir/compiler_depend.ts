# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for net_shortest_path_test.
