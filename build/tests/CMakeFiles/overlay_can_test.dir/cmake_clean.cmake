file(REMOVE_RECURSE
  "CMakeFiles/overlay_can_test.dir/overlay_can_test.cpp.o"
  "CMakeFiles/overlay_can_test.dir/overlay_can_test.cpp.o.d"
  "overlay_can_test"
  "overlay_can_test.pdb"
  "overlay_can_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_can_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
