file(REMOVE_RECURSE
  "CMakeFiles/proximity_nn_test.dir/proximity_nn_test.cpp.o"
  "CMakeFiles/proximity_nn_test.dir/proximity_nn_test.cpp.o.d"
  "proximity_nn_test"
  "proximity_nn_test.pdb"
  "proximity_nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
