# Empty compiler generated dependencies file for proximity_nn_test.
# This may be replaced when dependencies are built.
