# Empty compiler generated dependencies file for overlay_chord_test.
# This may be replaced when dependencies are built.
