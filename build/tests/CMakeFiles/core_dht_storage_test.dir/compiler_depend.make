# Empty compiler generated dependencies file for core_dht_storage_test.
# This may be replaced when dependencies are built.
