file(REMOVE_RECURSE
  "CMakeFiles/core_dht_storage_test.dir/core_dht_storage_test.cpp.o"
  "CMakeFiles/core_dht_storage_test.dir/core_dht_storage_test.cpp.o.d"
  "core_dht_storage_test"
  "core_dht_storage_test.pdb"
  "core_dht_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dht_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
