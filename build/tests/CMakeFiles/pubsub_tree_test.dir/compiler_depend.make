# Empty compiler generated dependencies file for pubsub_tree_test.
# This may be replaced when dependencies are built.
