file(REMOVE_RECURSE
  "CMakeFiles/pubsub_tree_test.dir/pubsub_tree_test.cpp.o"
  "CMakeFiles/pubsub_tree_test.dir/pubsub_tree_test.cpp.o.d"
  "pubsub_tree_test"
  "pubsub_tree_test.pdb"
  "pubsub_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
