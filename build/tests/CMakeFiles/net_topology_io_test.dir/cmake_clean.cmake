file(REMOVE_RECURSE
  "CMakeFiles/net_topology_io_test.dir/net_topology_io_test.cpp.o"
  "CMakeFiles/net_topology_io_test.dir/net_topology_io_test.cpp.o.d"
  "net_topology_io_test"
  "net_topology_io_test.pdb"
  "net_topology_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_topology_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
