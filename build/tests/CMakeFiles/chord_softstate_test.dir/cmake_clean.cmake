file(REMOVE_RECURSE
  "CMakeFiles/chord_softstate_test.dir/chord_softstate_test.cpp.o"
  "CMakeFiles/chord_softstate_test.dir/chord_softstate_test.cpp.o.d"
  "chord_softstate_test"
  "chord_softstate_test.pdb"
  "chord_softstate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_softstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
