# Empty dependencies file for chord_softstate_test.
# This may be replaced when dependencies are built.
