file(REMOVE_RECURSE
  "CMakeFiles/proximity_variants_test.dir/proximity_variants_test.cpp.o"
  "CMakeFiles/proximity_variants_test.dir/proximity_variants_test.cpp.o.d"
  "proximity_variants_test"
  "proximity_variants_test.pdb"
  "proximity_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
