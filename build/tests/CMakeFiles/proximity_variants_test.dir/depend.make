# Empty dependencies file for proximity_variants_test.
# This may be replaced when dependencies are built.
