file(REMOVE_RECURSE
  "CMakeFiles/geom_point_test.dir/geom_point_test.cpp.o"
  "CMakeFiles/geom_point_test.dir/geom_point_test.cpp.o.d"
  "geom_point_test"
  "geom_point_test.pdb"
  "geom_point_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_point_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
