file(REMOVE_RECURSE
  "CMakeFiles/pastry_overlay_test.dir/pastry_overlay_test.cpp.o"
  "CMakeFiles/pastry_overlay_test.dir/pastry_overlay_test.cpp.o.d"
  "pastry_overlay_test"
  "pastry_overlay_test.pdb"
  "pastry_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastry_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
