# Empty dependencies file for proximity_hierarchical_test.
# This may be replaced when dependencies are built.
