file(REMOVE_RECURSE
  "CMakeFiles/proximity_hierarchical_test.dir/proximity_hierarchical_test.cpp.o"
  "CMakeFiles/proximity_hierarchical_test.dir/proximity_hierarchical_test.cpp.o.d"
  "proximity_hierarchical_test"
  "proximity_hierarchical_test.pdb"
  "proximity_hierarchical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_hierarchical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
