# Empty dependencies file for overlay_ecan_test.
# This may be replaced when dependencies are built.
