file(REMOVE_RECURSE
  "CMakeFiles/overlay_ecan_test.dir/overlay_ecan_test.cpp.o"
  "CMakeFiles/overlay_ecan_test.dir/overlay_ecan_test.cpp.o.d"
  "overlay_ecan_test"
  "overlay_ecan_test.pdb"
  "overlay_ecan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_ecan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
