# Empty compiler generated dependencies file for chord_overlay_test.
# This may be replaced when dependencies are built.
