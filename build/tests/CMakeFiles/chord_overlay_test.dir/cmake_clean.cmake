file(REMOVE_RECURSE
  "CMakeFiles/chord_overlay_test.dir/chord_overlay_test.cpp.o"
  "CMakeFiles/chord_overlay_test.dir/chord_overlay_test.cpp.o.d"
  "chord_overlay_test"
  "chord_overlay_test.pdb"
  "chord_overlay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
