file(REMOVE_RECURSE
  "libto_overlay.a"
)
