file(REMOVE_RECURSE
  "CMakeFiles/to_overlay.dir/can.cpp.o"
  "CMakeFiles/to_overlay.dir/can.cpp.o.d"
  "CMakeFiles/to_overlay.dir/chord.cpp.o"
  "CMakeFiles/to_overlay.dir/chord.cpp.o.d"
  "CMakeFiles/to_overlay.dir/ecan.cpp.o"
  "CMakeFiles/to_overlay.dir/ecan.cpp.o.d"
  "CMakeFiles/to_overlay.dir/pastry.cpp.o"
  "CMakeFiles/to_overlay.dir/pastry.cpp.o.d"
  "CMakeFiles/to_overlay.dir/tacan.cpp.o"
  "CMakeFiles/to_overlay.dir/tacan.cpp.o.d"
  "libto_overlay.a"
  "libto_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
