# Empty compiler generated dependencies file for to_overlay.
# This may be replaced when dependencies are built.
