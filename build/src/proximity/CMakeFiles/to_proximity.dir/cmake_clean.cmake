file(REMOVE_RECURSE
  "CMakeFiles/to_proximity.dir/hierarchical.cpp.o"
  "CMakeFiles/to_proximity.dir/hierarchical.cpp.o.d"
  "CMakeFiles/to_proximity.dir/landmarks.cpp.o"
  "CMakeFiles/to_proximity.dir/landmarks.cpp.o.d"
  "CMakeFiles/to_proximity.dir/nn_search.cpp.o"
  "CMakeFiles/to_proximity.dir/nn_search.cpp.o.d"
  "CMakeFiles/to_proximity.dir/variants.cpp.o"
  "CMakeFiles/to_proximity.dir/variants.cpp.o.d"
  "libto_proximity.a"
  "libto_proximity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_proximity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
