file(REMOVE_RECURSE
  "libto_proximity.a"
)
