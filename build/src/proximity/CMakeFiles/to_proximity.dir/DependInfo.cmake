
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proximity/hierarchical.cpp" "src/proximity/CMakeFiles/to_proximity.dir/hierarchical.cpp.o" "gcc" "src/proximity/CMakeFiles/to_proximity.dir/hierarchical.cpp.o.d"
  "/root/repo/src/proximity/landmarks.cpp" "src/proximity/CMakeFiles/to_proximity.dir/landmarks.cpp.o" "gcc" "src/proximity/CMakeFiles/to_proximity.dir/landmarks.cpp.o.d"
  "/root/repo/src/proximity/nn_search.cpp" "src/proximity/CMakeFiles/to_proximity.dir/nn_search.cpp.o" "gcc" "src/proximity/CMakeFiles/to_proximity.dir/nn_search.cpp.o.d"
  "/root/repo/src/proximity/variants.cpp" "src/proximity/CMakeFiles/to_proximity.dir/variants.cpp.o" "gcc" "src/proximity/CMakeFiles/to_proximity.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/to_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/to_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/to_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/to_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
