# Empty dependencies file for to_proximity.
# This may be replaced when dependencies are built.
