file(REMOVE_RECURSE
  "CMakeFiles/to_softstate.dir/chord_maps.cpp.o"
  "CMakeFiles/to_softstate.dir/chord_maps.cpp.o.d"
  "CMakeFiles/to_softstate.dir/map_service.cpp.o"
  "CMakeFiles/to_softstate.dir/map_service.cpp.o.d"
  "CMakeFiles/to_softstate.dir/pastry_maps.cpp.o"
  "CMakeFiles/to_softstate.dir/pastry_maps.cpp.o.d"
  "libto_softstate.a"
  "libto_softstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_softstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
