# Empty dependencies file for to_softstate.
# This may be replaced when dependencies are built.
