file(REMOVE_RECURSE
  "libto_softstate.a"
)
