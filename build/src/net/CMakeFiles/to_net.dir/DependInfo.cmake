
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/to_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/to_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/latency.cpp" "src/net/CMakeFiles/to_net.dir/latency.cpp.o" "gcc" "src/net/CMakeFiles/to_net.dir/latency.cpp.o.d"
  "/root/repo/src/net/rtt_oracle.cpp" "src/net/CMakeFiles/to_net.dir/rtt_oracle.cpp.o" "gcc" "src/net/CMakeFiles/to_net.dir/rtt_oracle.cpp.o.d"
  "/root/repo/src/net/shortest_path.cpp" "src/net/CMakeFiles/to_net.dir/shortest_path.cpp.o" "gcc" "src/net/CMakeFiles/to_net.dir/shortest_path.cpp.o.d"
  "/root/repo/src/net/topology_io.cpp" "src/net/CMakeFiles/to_net.dir/topology_io.cpp.o" "gcc" "src/net/CMakeFiles/to_net.dir/topology_io.cpp.o.d"
  "/root/repo/src/net/transit_stub.cpp" "src/net/CMakeFiles/to_net.dir/transit_stub.cpp.o" "gcc" "src/net/CMakeFiles/to_net.dir/transit_stub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/to_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
