file(REMOVE_RECURSE
  "libto_net.a"
)
