file(REMOVE_RECURSE
  "CMakeFiles/to_net.dir/graph.cpp.o"
  "CMakeFiles/to_net.dir/graph.cpp.o.d"
  "CMakeFiles/to_net.dir/latency.cpp.o"
  "CMakeFiles/to_net.dir/latency.cpp.o.d"
  "CMakeFiles/to_net.dir/rtt_oracle.cpp.o"
  "CMakeFiles/to_net.dir/rtt_oracle.cpp.o.d"
  "CMakeFiles/to_net.dir/shortest_path.cpp.o"
  "CMakeFiles/to_net.dir/shortest_path.cpp.o.d"
  "CMakeFiles/to_net.dir/topology_io.cpp.o"
  "CMakeFiles/to_net.dir/topology_io.cpp.o.d"
  "CMakeFiles/to_net.dir/transit_stub.cpp.o"
  "CMakeFiles/to_net.dir/transit_stub.cpp.o.d"
  "libto_net.a"
  "libto_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
