# Empty dependencies file for to_net.
# This may be replaced when dependencies are built.
