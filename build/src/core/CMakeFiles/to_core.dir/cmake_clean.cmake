file(REMOVE_RECURSE
  "CMakeFiles/to_core.dir/chord_overlay.cpp.o"
  "CMakeFiles/to_core.dir/chord_overlay.cpp.o.d"
  "CMakeFiles/to_core.dir/chord_selectors.cpp.o"
  "CMakeFiles/to_core.dir/chord_selectors.cpp.o.d"
  "CMakeFiles/to_core.dir/pastry_overlay.cpp.o"
  "CMakeFiles/to_core.dir/pastry_overlay.cpp.o.d"
  "CMakeFiles/to_core.dir/pastry_selectors.cpp.o"
  "CMakeFiles/to_core.dir/pastry_selectors.cpp.o.d"
  "CMakeFiles/to_core.dir/selectors.cpp.o"
  "CMakeFiles/to_core.dir/selectors.cpp.o.d"
  "CMakeFiles/to_core.dir/soft_state_overlay.cpp.o"
  "CMakeFiles/to_core.dir/soft_state_overlay.cpp.o.d"
  "libto_core.a"
  "libto_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
