file(REMOVE_RECURSE
  "libto_core.a"
)
