# Empty dependencies file for to_core.
# This may be replaced when dependencies are built.
