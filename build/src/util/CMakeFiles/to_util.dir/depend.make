# Empty dependencies file for to_util.
# This may be replaced when dependencies are built.
