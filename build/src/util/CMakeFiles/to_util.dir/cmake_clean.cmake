file(REMOVE_RECURSE
  "CMakeFiles/to_util.dir/biguint.cpp.o"
  "CMakeFiles/to_util.dir/biguint.cpp.o.d"
  "CMakeFiles/to_util.dir/flags.cpp.o"
  "CMakeFiles/to_util.dir/flags.cpp.o.d"
  "CMakeFiles/to_util.dir/logging.cpp.o"
  "CMakeFiles/to_util.dir/logging.cpp.o.d"
  "CMakeFiles/to_util.dir/rng.cpp.o"
  "CMakeFiles/to_util.dir/rng.cpp.o.d"
  "CMakeFiles/to_util.dir/stats.cpp.o"
  "CMakeFiles/to_util.dir/stats.cpp.o.d"
  "CMakeFiles/to_util.dir/svd.cpp.o"
  "CMakeFiles/to_util.dir/svd.cpp.o.d"
  "CMakeFiles/to_util.dir/table.cpp.o"
  "CMakeFiles/to_util.dir/table.cpp.o.d"
  "libto_util.a"
  "libto_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
