file(REMOVE_RECURSE
  "libto_util.a"
)
