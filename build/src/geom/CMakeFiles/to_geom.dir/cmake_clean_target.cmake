file(REMOVE_RECURSE
  "libto_geom.a"
)
