# Empty compiler generated dependencies file for to_geom.
# This may be replaced when dependencies are built.
