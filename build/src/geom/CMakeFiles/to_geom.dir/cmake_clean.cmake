file(REMOVE_RECURSE
  "CMakeFiles/to_geom.dir/hilbert.cpp.o"
  "CMakeFiles/to_geom.dir/hilbert.cpp.o.d"
  "CMakeFiles/to_geom.dir/point.cpp.o"
  "CMakeFiles/to_geom.dir/point.cpp.o.d"
  "CMakeFiles/to_geom.dir/zone.cpp.o"
  "CMakeFiles/to_geom.dir/zone.cpp.o.d"
  "libto_geom.a"
  "libto_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
