file(REMOVE_RECURSE
  "CMakeFiles/to_sim.dir/event_queue.cpp.o"
  "CMakeFiles/to_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/to_sim.dir/metrics.cpp.o"
  "CMakeFiles/to_sim.dir/metrics.cpp.o.d"
  "libto_sim.a"
  "libto_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
