# Empty dependencies file for to_sim.
# This may be replaced when dependencies are built.
