file(REMOVE_RECURSE
  "libto_sim.a"
)
