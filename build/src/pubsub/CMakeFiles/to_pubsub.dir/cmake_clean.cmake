file(REMOVE_RECURSE
  "CMakeFiles/to_pubsub.dir/dissemination_tree.cpp.o"
  "CMakeFiles/to_pubsub.dir/dissemination_tree.cpp.o.d"
  "CMakeFiles/to_pubsub.dir/pubsub.cpp.o"
  "CMakeFiles/to_pubsub.dir/pubsub.cpp.o.d"
  "libto_pubsub.a"
  "libto_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/to_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
