file(REMOVE_RECURSE
  "libto_pubsub.a"
)
