# Empty compiler generated dependencies file for to_pubsub.
# This may be replaced when dependencies are built.
