file(REMOVE_RECURSE
  "CMakeFiles/fig03_06_nn_search.dir/fig03_06_nn_search.cpp.o"
  "CMakeFiles/fig03_06_nn_search.dir/fig03_06_nn_search.cpp.o.d"
  "fig03_06_nn_search"
  "fig03_06_nn_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_06_nn_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
