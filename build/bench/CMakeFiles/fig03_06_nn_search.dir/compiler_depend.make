# Empty compiler generated dependencies file for fig03_06_nn_search.
# This may be replaced when dependencies are built.
