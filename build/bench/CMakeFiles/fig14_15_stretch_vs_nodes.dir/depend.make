# Empty dependencies file for fig14_15_stretch_vs_nodes.
# This may be replaced when dependencies are built.
