file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_stretch_vs_nodes.dir/fig14_15_stretch_vs_nodes.cpp.o"
  "CMakeFiles/fig14_15_stretch_vs_nodes.dir/fig14_15_stretch_vs_nodes.cpp.o.d"
  "fig14_15_stretch_vs_nodes"
  "fig14_15_stretch_vs_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_stretch_vs_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
