# Empty compiler generated dependencies file for taxonomy_techniques.
# This may be replaced when dependencies are built.
