file(REMOVE_RECURSE
  "CMakeFiles/taxonomy_techniques.dir/taxonomy_techniques.cpp.o"
  "CMakeFiles/taxonomy_techniques.dir/taxonomy_techniques.cpp.o.d"
  "taxonomy_techniques"
  "taxonomy_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxonomy_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
