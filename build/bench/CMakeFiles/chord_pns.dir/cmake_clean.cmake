file(REMOVE_RECURSE
  "CMakeFiles/chord_pns.dir/chord_pns.cpp.o"
  "CMakeFiles/chord_pns.dir/chord_pns.cpp.o.d"
  "chord_pns"
  "chord_pns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_pns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
