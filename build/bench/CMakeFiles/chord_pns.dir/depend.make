# Empty dependencies file for chord_pns.
# This may be replaced when dependencies are built.
