file(REMOVE_RECURSE
  "CMakeFiles/ablation_landmark_opts.dir/ablation_landmark_opts.cpp.o"
  "CMakeFiles/ablation_landmark_opts.dir/ablation_landmark_opts.cpp.o.d"
  "ablation_landmark_opts"
  "ablation_landmark_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_landmark_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
