# Empty compiler generated dependencies file for ablation_landmark_opts.
# This may be replaced when dependencies are built.
