# Empty dependencies file for fig02_ecan_vs_can.
# This may be replaced when dependencies are built.
