file(REMOVE_RECURSE
  "CMakeFiles/fig02_ecan_vs_can.dir/fig02_ecan_vs_can.cpp.o"
  "CMakeFiles/fig02_ecan_vs_can.dir/fig02_ecan_vs_can.cpp.o.d"
  "fig02_ecan_vs_can"
  "fig02_ecan_vs_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ecan_vs_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
