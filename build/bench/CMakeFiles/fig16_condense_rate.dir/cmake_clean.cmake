file(REMOVE_RECURSE
  "CMakeFiles/fig16_condense_rate.dir/fig16_condense_rate.cpp.o"
  "CMakeFiles/fig16_condense_rate.dir/fig16_condense_rate.cpp.o.d"
  "fig16_condense_rate"
  "fig16_condense_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_condense_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
