# Empty compiler generated dependencies file for fig16_condense_rate.
# This may be replaced when dependencies are built.
