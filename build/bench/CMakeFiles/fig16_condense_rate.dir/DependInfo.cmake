
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig16_condense_rate.cpp" "bench/CMakeFiles/fig16_condense_rate.dir/fig16_condense_rate.cpp.o" "gcc" "bench/CMakeFiles/fig16_condense_rate.dir/fig16_condense_rate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/to_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/to_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/softstate/CMakeFiles/to_softstate.dir/DependInfo.cmake"
  "/root/repo/build/src/proximity/CMakeFiles/to_proximity.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/to_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/to_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/to_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/to_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/to_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
