# Empty dependencies file for maintenance_pubsub.
# This may be replaced when dependencies are built.
