file(REMOVE_RECURSE
  "CMakeFiles/maintenance_pubsub.dir/maintenance_pubsub.cpp.o"
  "CMakeFiles/maintenance_pubsub.dir/maintenance_pubsub.cpp.o.d"
  "maintenance_pubsub"
  "maintenance_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
