# Empty compiler generated dependencies file for fig10_13_stretch_vs_rtts.
# This may be replaced when dependencies are built.
