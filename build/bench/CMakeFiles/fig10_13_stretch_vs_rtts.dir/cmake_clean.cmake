file(REMOVE_RECURSE
  "CMakeFiles/fig10_13_stretch_vs_rtts.dir/fig10_13_stretch_vs_rtts.cpp.o"
  "CMakeFiles/fig10_13_stretch_vs_rtts.dir/fig10_13_stretch_vs_rtts.cpp.o.d"
  "fig10_13_stretch_vs_rtts"
  "fig10_13_stretch_vs_rtts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_13_stretch_vs_rtts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
