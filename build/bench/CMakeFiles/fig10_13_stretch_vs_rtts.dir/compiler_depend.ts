# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_13_stretch_vs_rtts.
