file(REMOVE_RECURSE
  "CMakeFiles/pastry_pns.dir/pastry_pns.cpp.o"
  "CMakeFiles/pastry_pns.dir/pastry_pns.cpp.o.d"
  "pastry_pns"
  "pastry_pns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastry_pns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
