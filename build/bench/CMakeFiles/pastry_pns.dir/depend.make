# Empty dependencies file for pastry_pns.
# This may be replaced when dependencies are built.
