# Empty compiler generated dependencies file for overhead_costs.
# This may be replaced when dependencies are built.
