file(REMOVE_RECURSE
  "CMakeFiles/overhead_costs.dir/overhead_costs.cpp.o"
  "CMakeFiles/overhead_costs.dir/overhead_costs.cpp.o.d"
  "overhead_costs"
  "overhead_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
