file(REMOVE_RECURSE
  "CMakeFiles/tacan_imbalance.dir/tacan_imbalance.cpp.o"
  "CMakeFiles/tacan_imbalance.dir/tacan_imbalance.cpp.o.d"
  "tacan_imbalance"
  "tacan_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacan_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
