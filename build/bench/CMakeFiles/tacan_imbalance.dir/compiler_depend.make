# Empty compiler generated dependencies file for tacan_imbalance.
# This may be replaced when dependencies are built.
